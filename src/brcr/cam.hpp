/**
 * @file
 * Functional model of the CAM-based fast-match unit (paper section 4.3,
 * Fig 14).
 *
 * The hardware stores each decompressed m-bit column pattern split into a
 * higher-order (HO) and lower-order (LO) half. Each half indexes a bank
 * with 2^(m/2) one-hot rows over the loaded columns; a search ANDs the HO
 * row and LO row to produce the match bitmap in a single cycle. The
 * controller enumerates all non-zero search keys (the all-zero key is
 * clock-gated).
 *
 * This model reproduces that structure exactly (banks as bitmaps) so the
 * cycle/energy accounting of the simulator can charge per-search costs,
 * and so tests can verify bank-based matching equals direct comparison.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace mcbp::brcr {

/** Search statistics for one CAM lifetime. */
struct CamStats
{
    std::uint64_t loads = 0;        ///< Column patterns written.
    std::uint64_t searches = 0;     ///< Search keys probed.
    std::uint64_t gatedSearches = 0;///< Searches skipped by clock gating.
    std::uint64_t matches = 0;      ///< Total matched columns returned.
};

/**
 * CAM fast-match unit for group size m (even, <= 8) over up to
 * @p capacity columns (hardware: 512 B CAM, 64 columns of 4-bit keys per
 * PE in the paper's configuration).
 */
class CamMatchUnit
{
  public:
    /**
     * @param m group size in bits (pattern width); must be even and <= 8
     *          (the hardware composes 2-bit basic blocks).
     * @param capacity maximum number of columns held at once.
     */
    CamMatchUnit(std::size_t m, std::size_t capacity);

    std::size_t groupSize() const { return m_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t loadedColumns() const { return loaded_; }

    /**
     * Load the given column patterns (address orchestration step). Any
     * previous contents are replaced. Size must not exceed capacity.
     */
    void load(const std::vector<std::uint32_t> &patterns);

    /**
     * Search for @p key; returns a bitmap over loaded columns packed in
     * 64-bit words (bit c set = column c matches). Searching the all-zero
     * key returns an empty bitmap without touching the banks (clock
     * gating), mirrored in the stats.
     */
    std::vector<std::uint64_t> search(std::uint32_t key);

    const CamStats &stats() const { return stats_; }

  private:
    std::size_t bitmapWords() const { return (capacity_ + 63) / 64; }

    std::size_t m_;
    std::size_t halfBits_;
    std::size_t capacity_;
    std::size_t loaded_ = 0;
    /** bankHo_[v] = bitmap of columns whose HO half equals v. */
    std::vector<std::vector<std::uint64_t>> bankHo_;
    /** bankLo_[v] = bitmap of columns whose LO half equals v. */
    std::vector<std::vector<std::uint64_t>> bankLo_;
    CamStats stats_;
};

} // namespace mcbp::brcr
