#include "brcr/cam.hpp"

#include <bit>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::brcr {

CamMatchUnit::CamMatchUnit(std::size_t m, std::size_t capacity)
    : m_(m), halfBits_(m / 2), capacity_(capacity)
{
    fatalIf(m == 0 || m > 8 || (m % 2) != 0,
            "CAM group size must be even and in [2, 8]");
    fatalIf(capacity == 0, "CAM capacity must be positive");
    bankHo_.assign(pow2(static_cast<unsigned>(halfBits_)),
                   std::vector<std::uint64_t>(bitmapWords(), 0));
    bankLo_.assign(pow2(static_cast<unsigned>(halfBits_)),
                   std::vector<std::uint64_t>(bitmapWords(), 0));
}

void
CamMatchUnit::load(const std::vector<std::uint32_t> &patterns)
{
    fatalIf(patterns.size() > capacity_, "CAM overflow");
    for (auto &row : bankHo_)
        std::fill(row.begin(), row.end(), 0);
    for (auto &row : bankLo_)
        std::fill(row.begin(), row.end(), 0);
    const std::uint32_t half_mask =
        static_cast<std::uint32_t>(pow2(
            static_cast<unsigned>(halfBits_))) - 1;
    for (std::size_t c = 0; c < patterns.size(); ++c) {
        const std::uint32_t p = patterns[c];
        panicIf(p >= pow2(static_cast<unsigned>(m_)),
                "pattern wider than CAM key");
        const std::uint32_t lo = p & half_mask;
        const std::uint32_t ho = (p >> halfBits_) & half_mask;
        bankHo_[ho][c >> 6] |= std::uint64_t{1} << (c & 63);
        bankLo_[lo][c >> 6] |= std::uint64_t{1} << (c & 63);
        ++stats_.loads;
    }
    loaded_ = patterns.size();
}

std::vector<std::uint64_t>
CamMatchUnit::search(std::uint32_t key)
{
    panicIf(key >= pow2(static_cast<unsigned>(m_)),
            "search key wider than CAM key");
    if (key == 0) {
        ++stats_.gatedSearches;
        return std::vector<std::uint64_t>(bitmapWords(), 0);
    }
    ++stats_.searches;
    const std::uint32_t half_mask =
        static_cast<std::uint32_t>(pow2(
            static_cast<unsigned>(halfBits_))) - 1;
    const std::uint32_t lo = key & half_mask;
    const std::uint32_t ho = (key >> halfBits_) & half_mask;
    std::vector<std::uint64_t> bitmap(bitmapWords(), 0);
    // Fused AND + popcount over the two bank rows (dispatched kernel):
    // one pass produces both the match bitmap and the match count.
    stats_.matches += andPopcountSpan(bitmap.data(), bankHo_[ho].data(),
                                      bankLo_[lo].data(), bitmap.size());
    return bitmap;
}

} // namespace mcbp::brcr
