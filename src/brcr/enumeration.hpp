/**
 * @file
 * Enumeration-matrix / index-matrix factorization of a grouped bit-slice
 * matrix (paper Fig 4(c) and Fig 7).
 *
 * A group matrix G (m x H binary) with repeated column vectors factors as
 *     G = E x I
 * where E (m x d) stores the distinct non-zero column patterns and
 * I (d x H) is a selection matrix mapping each original column to its
 * pattern. Then G x X = E x (I x X): the inner product I x X merges the
 * activations of repeated columns (the "merged activation vector"), and
 * E x reconstructs the m outputs.
 *
 * This module is the explicit, matrix-form version used by tests and the
 * worked paper examples; the production engine (brcr_engine) performs the
 * same computation with bucketed accumulation.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bitslice/bit_plane.hpp"
#include "brcr/group_scratch.hpp"

namespace mcbp::brcr {

/** Result of factorizing one m-row group of a bit plane. */
struct GroupFactorization
{
    std::size_t m = 0;                     ///< Group size (rows).
    std::vector<std::uint32_t> patterns;   ///< Distinct non-zero patterns (E columns).
    std::vector<std::int32_t> columnIndex; ///< Per input column: index into
                                           ///< patterns, or -1 for all-zero.

    /** Number of distinct non-zero patterns. */
    std::size_t distinctCount() const { return patterns.size(); }
};

/** Factorize rows [row0, row0+m) of @p plane. */
GroupFactorization factorizeGroup(const bitslice::BitPlane &plane,
                                  std::size_t row0, std::size_t m);

/**
 * Allocation-free fast path: factorize into caller-owned @p out using
 * a reusable @p scratch (the same GroupScratch the BRCR engine
 * threads through its hot loop). Pattern deduplication indexes a
 * direct 2^m table in the scratch instead of hashing into a fresh
 * unordered_map per group, and @p out's vectors reuse their capacity
 * across groups. Produces exactly the result of the convenience
 * overload above.
 */
void factorizeGroup(const bitslice::BitPlane &plane, std::size_t row0,
                    std::size_t m, GroupScratch &scratch,
                    GroupFactorization &out);

/**
 * Merged activation vector Z = I x X for a factorized group: entry d
 * accumulates the activations of every column mapped to pattern d.
 * @returns Z plus the number of additions performed (an add is counted
 * each time an activation lands on an already-occupied entry).
 */
struct MavResult
{
    std::vector<std::int64_t> z;
    std::uint64_t additions = 0;
};

MavResult mergeActivations(const GroupFactorization &fact,
                           const std::vector<std::int8_t> &x);

/**
 * Reconstruct the m group outputs Y = E x Z.
 * @returns outputs plus the number of additions performed.
 */
struct ReconResult
{
    std::vector<std::int64_t> y;
    std::uint64_t additions = 0;
};

ReconResult reconstructOutputs(const GroupFactorization &fact,
                               const MavResult &mav);

} // namespace mcbp::brcr
