#include "brcr/brcr_engine.hpp"

#include <algorithm>
#include <bit>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::brcr {

namespace {

/** Transpose an Int8Matrix (used to make activation rows contiguous). */
Int8Matrix
transpose(const Int8Matrix &x)
{
    Int8Matrix t(x.cols(), x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            t.at(c, r) = x.at(r, c);
    return t;
}

} // namespace

BrcrEngine::BrcrEngine(BrcrConfig cfg) : cfg_(cfg)
{
    fatalIf(cfg_.groupSize == 0 || cfg_.groupSize > 12,
            "BRCR group size must be in [1, 12]");
}

void
BrcrEngine::accumulateHalf(const bitslice::SignMagnitude &half, int sign,
                           const Int8Matrix &xt, Int32Matrix &y,
                           BrcrOpCounts &ops, GroupScratch &s) const
{
    const std::size_t m = cfg_.groupSize;
    const std::size_t pattern_space = pow2(static_cast<unsigned>(m));
    const std::size_t n_out = xt.rows();
    const std::size_t k_dim = xt.cols();

    s.count.assign(pattern_space, 0);
    s.offset.assign(pattern_space + 1, 0);
    s.cursor.assign(pattern_space, 0);
    s.order.assign(k_dim, 0);
    s.z.assign(pattern_space, 0);
    s.acc.assign(m, 0);
    const std::size_t mask_words = (k_dim + 63) / 64;
    s.nonzero.assign(mask_words, 0);

    for (std::size_t p = 0; p < half.magnitude.size(); ++p) {
        const bitslice::BitPlane &plane = half.magnitude[p];
        for (std::size_t row0 = 0; row0 < half.rows; row0 += m) {
            const std::size_t rows_here = std::min(m, half.rows - row0);
            plane.columnPatterns(row0, m, s.patterns);

            // Non-zero-column bitmap (dispatched SIMD kernel): the
            // counting sort and scatter below walk only its set bits,
            // so the all-zero columns that dominate sparse planes cost
            // a popcount instead of a table update each.
            nonzeroMask32Span(s.patterns.data(), k_dim,
                              s.nonzero.data());

            // Counting sort of columns by pattern (the CAM match step).
            std::fill(s.count.begin(), s.count.end(), 0);
            std::size_t nz_cols = 0;
            for (std::size_t wi = 0; wi < mask_words; ++wi) {
                std::uint64_t bits = s.nonzero[wi];
                nz_cols += static_cast<std::size_t>(popcount64(bits));
                while (bits != 0) {
                    const std::size_t c =
                        (wi << 6) + static_cast<std::size_t>(
                                        std::countr_zero(bits));
                    bits &= bits - 1;
                    ++s.count[s.patterns[c]];
                }
            }
            ops.zeroColumns += k_dim - nz_cols;
            s.present.clear();
            std::uint32_t pos = 0;
            for (std::size_t pat = 1; pat < pattern_space; ++pat) {
                s.offset[pat] = pos;
                pos += s.count[pat];
                if (s.count[pat] > 0)
                    s.present.push_back(static_cast<std::uint32_t>(pat));
            }
            std::copy(s.offset.begin(), s.offset.end() - 1,
                      s.cursor.begin());
            // Scatter in ascending column order via the same bitmap.
            for (std::size_t wi = 0; wi < mask_words; ++wi) {
                std::uint64_t bits = s.nonzero[wi];
                while (bits != 0) {
                    const std::size_t c =
                        (wi << 6) + static_cast<std::size_t>(
                                        std::countr_zero(bits));
                    bits &= bits - 1;
                    s.order[s.cursor[s.patterns[c]]++] =
                        static_cast<std::uint32_t>(c);
                }
            }
            ++ops.groupsProcessed;
            // The controller enumerates every search key except the
            // clock-gated all-zero key.
            ops.camSearches += pattern_space - 1;

            if (s.present.empty())
                continue;

            for (std::size_t n = 0; n < n_out; ++n) {
                const std::int8_t *xrow = xt.rowPtr(n);

                // Step 1: merge repetitive operations into the MAV.
                for (std::uint32_t pat : s.present) {
                    const std::uint32_t begin = s.offset[pat];
                    const std::uint32_t end = begin + s.count[pat];
                    std::int64_t acc = xrow[s.order[begin]];
                    for (std::uint32_t i = begin + 1; i < end; ++i)
                        acc += xrow[s.order[i]];
                    s.z[pat] = acc;
                    ops.mergeAdds += s.count[pat] - 1;
                }

                // Step 2: computation reconstruction (Y = E x Z).
                std::fill(s.acc.begin(), s.acc.begin() + rows_here, 0);
                std::uint32_t occupied = 0;
                for (std::uint32_t pat : s.present) {
                    std::uint32_t bits = pat;
                    while (bits) {
                        const unsigned i =
                            static_cast<unsigned>(std::countr_zero(bits));
                        bits &= bits - 1;
                        if (i >= rows_here)
                            continue;
                        if (occupied & (1u << i)) {
                            s.acc[i] += s.z[pat];
                            ++ops.reconAdds;
                        } else {
                            s.acc[i] = s.z[pat];
                            occupied |= 1u << i;
                        }
                    }
                }

                // Shift-accumulate the plane contribution.
                for (std::size_t i = 0; i < rows_here; ++i) {
                    if (!(occupied & (1u << i)))
                        continue;
                    const std::int64_t contrib = s.acc[i] << p;
                    y.at(row0 + i, n) += static_cast<std::int32_t>(
                        sign > 0 ? contrib : -contrib);
                    ++ops.shiftAccAdds;
                }
            }
        }
    }
}

BrcrGemmResult
BrcrEngine::gemm(const Int8Matrix &w, const Int8Matrix &x) const
{
    fatalIf(w.cols() != x.rows(), "BRCR gemm shape mismatch");
    bitslice::SignSplit split =
        bitslice::decomposeSignSplit(w, cfg_.bitWidth);
    Int8Matrix xt = transpose(x);
    BrcrGemmResult out;
    out.y = Int32Matrix(w.rows(), x.cols());
    GroupScratch scratch; // one allocation serves both halves.
    accumulateHalf(split.positive, +1, xt, out.y, out.ops, scratch);
    accumulateHalf(split.negative, -1, xt, out.y, out.ops, scratch);
    return out;
}

BrcrGemvResult
BrcrEngine::gemv(const Int8Matrix &w, const std::vector<std::int8_t> &x) const
{
    fatalIf(w.cols() != x.size(), "BRCR gemv shape mismatch");
    Int8Matrix xt(1, x.size());
    std::copy(x.begin(), x.end(), xt.rowPtr(0));
    bitslice::SignSplit split =
        bitslice::decomposeSignSplit(w, cfg_.bitWidth);
    Int32Matrix y(w.rows(), 1);
    BrcrGemvResult out;
    GroupScratch scratch; // one allocation serves both halves.
    accumulateHalf(split.positive, +1, xt, y, out.ops, scratch);
    accumulateHalf(split.negative, -1, xt, y, out.ops, scratch);
    out.y.resize(w.rows());
    for (std::size_t r = 0; r < w.rows(); ++r)
        out.y[r] = y.at(r, 0);
    return out;
}

BrcrGemvResult
BrcrEngine::gemvTernary(const Int8Matrix &w,
                        const std::vector<std::int8_t> &x) const
{
    fatalIf(w.cols() != x.size(), "BRCR gemv shape mismatch");
    const std::size_t m = cfg_.groupSize;
    const std::size_t pattern_space = ipow(3, static_cast<unsigned>(m));
    bitslice::SignMagnitude sm =
        bitslice::decompose(w, cfg_.bitWidth);

    BrcrGemvResult out;
    out.y.assign(w.rows(), 0);

    std::vector<std::uint32_t> pattern(w.cols());
    std::vector<std::int64_t> z(pattern_space, 0);
    std::vector<std::uint8_t> occupied_z(pattern_space, 0);
    std::vector<std::uint32_t> present;
    std::vector<std::int64_t> acc(m, 0);

    // Precompute powers of three for pattern digit packing.
    std::vector<std::uint32_t> pow3(m + 1, 1);
    for (std::size_t i = 1; i <= m; ++i)
        pow3[i] = pow3[i - 1] * 3;

    for (std::size_t p = 0; p < sm.magnitude.size(); ++p) {
        const bitslice::BitPlane &plane = sm.magnitude[p];
        for (std::size_t row0 = 0; row0 < w.rows(); row0 += m) {
            const std::size_t rows_here = std::min(m, w.rows() - row0);
            // Build ternary column patterns: digit 0 = no bit, 1 = +bit,
            // 2 = -bit (sign folded into the pattern).
            for (std::size_t c = 0; c < w.cols(); ++c) {
                std::uint32_t pat = 0;
                for (std::size_t i = 0; i < rows_here; ++i) {
                    if (!plane.get(row0 + i, c))
                        continue;
                    const std::uint32_t digit =
                        sm.sign.get(row0 + i, c) ? 2 : 1;
                    pat += digit * pow3[i];
                }
                pattern[c] = pat;
            }
            ++out.ops.groupsProcessed;
            out.ops.camSearches += pattern_space - 1;

            present.clear();
            for (std::size_t c = 0; c < w.cols(); ++c) {
                const std::uint32_t pat = pattern[c];
                if (pat == 0) {
                    ++out.ops.zeroColumns;
                    continue;
                }
                if (occupied_z[pat]) {
                    z[pat] += x[c];
                    ++out.ops.mergeAdds;
                } else {
                    z[pat] = x[c];
                    occupied_z[pat] = 1;
                    present.push_back(pat);
                }
            }

            std::fill(acc.begin(), acc.begin() + rows_here, 0);
            std::uint32_t occupied = 0;
            for (std::uint32_t pat : present) {
                std::uint32_t rem = pat;
                for (std::size_t i = 0; i < rows_here && rem; ++i) {
                    const std::uint32_t digit = rem % 3;
                    rem /= 3;
                    if (digit == 0)
                        continue;
                    const std::int64_t v =
                        digit == 1 ? z[pat] : -z[pat];
                    if (occupied & (1u << i)) {
                        acc[i] += v;
                        ++out.ops.reconAdds;
                    } else {
                        acc[i] = v;
                        occupied |= 1u << i;
                    }
                }
            }
            for (std::size_t i = 0; i < rows_here; ++i) {
                if (!(occupied & (1u << i)))
                    continue;
                out.y[row0 + i] +=
                    static_cast<std::int32_t>(acc[i] << p);
                ++out.ops.shiftAccAdds;
            }
            // Reset only the touched MAV entries.
            for (std::uint32_t pat : present)
                occupied_z[pat] = 0;
        }
    }
    return out;
}

} // namespace mcbp::brcr
