#include "brcr/cost_model.hpp"

#include <cmath>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::brcr {

double
brcrAdds(const CostModelParams &p)
{
    fatalIf(p.groupSize == 0, "group size must be positive");
    const double h = static_cast<double>(p.hidden);
    const double m = static_cast<double>(p.groupSize);
    const double recon =
        h * static_cast<double>(pow2(
                static_cast<unsigned>(p.groupSize - 1)));
    return p.weightBits * (h * h / m * (1.0 - p.bitSparsity) + recon);
}

double
naiveBscAdds(const CostModelParams &p)
{
    const double h = static_cast<double>(p.hidden);
    return p.weightBits * h * h * (1.0 - p.bitSparsity);
}

double
valueSparsityAdds(const CostModelParams &p)
{
    const double h = static_cast<double>(p.hidden);
    return p.weightBits * h * h * (1.0 - p.valueSparsity);
}

double
reductionVsBsc(const CostModelParams &p)
{
    return naiveBscAdds(p) / brcrAdds(p);
}

double
reductionVsValue(const CostModelParams &p)
{
    return valueSparsityAdds(p) / brcrAdds(p);
}

double
zeroColumnProbability(double bit_sparsity, std::size_t m)
{
    return std::pow(bit_sparsity, static_cast<double>(m));
}

double
expectedDistinctPatterns(std::size_t h, std::size_t m)
{
    // Balls-into-bins: h columns into (2^m - 1) non-zero patterns.
    const double bins =
        static_cast<double>(pow2(static_cast<unsigned>(m))) - 1.0;
    const double balls = static_cast<double>(h);
    return bins * (1.0 - std::pow(1.0 - 1.0 / bins, balls));
}

} // namespace mcbp::brcr
