/**
 * @file
 * The BRCR computation engine (paper section 3.1 / Fig 7): bit-slice
 * repetitiveness-enabled GEMV/GEMM with exact operation accounting.
 *
 * Per m-row group of every magnitude bit-plane the engine:
 *   1. extracts the H column patterns (the CAM match in hardware),
 *   2. merges activations of identical patterns into a 2^m-entry merged
 *      activation vector (MAV, the addition-merge units),
 *   3. reconstructs the m partial outputs from the MAV (reconstruction
 *      unit) and shift-accumulates them at the plane's weight 2^(p-1).
 *
 * Sign handling follows DESIGN.md 4.1: the default engine splits
 * W = W+ - W- (disjoint support) so the column pattern is purely binary;
 * a ternary-pattern variant (3^m MAV over {-1, 0, +1}) is provided as an
 * ablation to quantify the alternative.
 *
 * Every result is bit-exact equal to quant::gemvInt / gemmInt, which the
 * test suite asserts on random and adversarial inputs.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bitslice/sign_magnitude.hpp"
#include "brcr/group_scratch.hpp"
#include "common/matrix.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::brcr {

/** Exact operation counts accumulated while executing a BRCR kernel. */
struct BrcrOpCounts
{
    std::uint64_t mergeAdds = 0;     ///< Additions in MAV accumulation.
    std::uint64_t reconAdds = 0;     ///< Additions in output reconstruction.
    std::uint64_t shiftAccAdds = 0;  ///< Plane shift-accumulate additions.
    std::uint64_t camSearches = 0;   ///< CAM search-key probes issued.
    std::uint64_t groupsProcessed = 0; ///< (group, plane) pairs touched.
    std::uint64_t zeroColumns = 0;   ///< Group columns skipped as all-zero.

    std::uint64_t
    totalAdds() const
    {
        return mergeAdds + reconAdds + shiftAccAdds;
    }

    void
    merge(const BrcrOpCounts &o)
    {
        mergeAdds += o.mergeAdds;
        reconAdds += o.reconAdds;
        shiftAccAdds += o.shiftAccAdds;
        camSearches += o.camSearches;
        groupsProcessed += o.groupsProcessed;
        zeroColumns += o.zeroColumns;
    }
};

/** Configuration of the BRCR engine. */
struct BrcrConfig
{
    std::size_t groupSize = 4;                  ///< m (paper default 4).
    quant::BitWidth bitWidth = quant::BitWidth::Int8;
};

/** Result of a BRCR GEMV. */
struct BrcrGemvResult
{
    std::vector<std::int32_t> y;
    BrcrOpCounts ops;
};

/** Result of a BRCR GEMM. */
struct BrcrGemmResult
{
    Int32Matrix y;
    BrcrOpCounts ops;
};

/**
 * BRCR execution engine. Stateless apart from its configuration; safe to
 * reuse across calls.
 */
class BrcrEngine
{
  public:
    explicit BrcrEngine(BrcrConfig cfg = {});

    const BrcrConfig &config() const { return cfg_; }

    /** y = W x, exact, with op accounting (sign-split binary patterns). */
    BrcrGemvResult gemv(const Int8Matrix &w,
                        const std::vector<std::int8_t> &x) const;

    /**
     * Y = W X, exact. Column patterns are extracted once per group-plane
     * and reused across all N activation columns (weight-stationary reuse,
     * the paper's Fig 12 tiling premise).
     */
    BrcrGemmResult gemm(const Int8Matrix &w, const Int8Matrix &x) const;

    /**
     * Ternary-pattern ablation variant: one pass over the SM planes with
     * {-1, 0, +1}^m patterns (3^m MAV). Exact; generally captures less
     * repetition per pattern table but avoids the sign split.
     */
    BrcrGemvResult gemvTernary(const Int8Matrix &w,
                               const std::vector<std::int8_t> &x) const;

  private:
    /** Process all planes of one sign-split half, adding into y.
     *  @p scratch is reused across row groups, planes and both halves
     *  of one gemv/gemm call (no per-group allocations). */
    void accumulateHalf(const bitslice::SignMagnitude &half, int sign,
                        const Int8Matrix &x, Int32Matrix &y,
                        BrcrOpCounts &ops, GroupScratch &scratch) const;

    BrcrConfig cfg_;
};

} // namespace mcbp::brcr
