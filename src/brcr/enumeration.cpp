#include "brcr/enumeration.hpp"

#include <bit>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::brcr {

void
factorizeGroup(const bitslice::BitPlane &plane, std::size_t row0,
               std::size_t m, GroupScratch &scratch,
               GroupFactorization &out)
{
    fatalIf(m == 0 || m > 16, "group size must be in [1, 16]");
    fatalIf(row0 >= plane.rows(), "group start row out of range");
    out.m = m;
    out.patterns.clear();
    out.columnIndex.assign(plane.cols(), -1);

    plane.columnPatterns(row0, m, scratch.patterns);

    // Direct-index pattern table: scratch.indexOf is all -1 between
    // calls (the invariant is restored below by resetting only the
    // entries this group touched, so consecutive groups never pay a
    // 2^m clear — the same trick compareMergeStrategies uses for its
    // count table).
    const std::size_t pattern_space = pow2(static_cast<unsigned>(m));
    if (scratch.indexOf.size() < pattern_space)
        scratch.indexOf.assign(pattern_space, -1);

    // Visit only non-zero columns: the dispatched kernel builds a
    // bitmap over the pattern slots, and the dedup walks its set bits
    // (zero columns keep their -1 columnIndex untouched).
    const std::size_t n = scratch.patterns.size();
    const std::size_t mask_words = (n + 63) / 64;
    if (scratch.nonzero.size() < mask_words)
        scratch.nonzero.resize(mask_words);
    nonzeroMask32Span(scratch.patterns.data(), n,
                      scratch.nonzero.data());
    for (std::size_t wi = 0; wi < mask_words; ++wi) {
        std::uint64_t bits = scratch.nonzero[wi];
        while (bits != 0) {
            const std::size_t c =
                (wi << 6) +
                static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::uint32_t p = scratch.patterns[c];
            std::int32_t d = scratch.indexOf[p];
            if (d < 0) {
                d = static_cast<std::int32_t>(out.patterns.size());
                scratch.indexOf[p] = d;
                out.patterns.push_back(p);
            }
            out.columnIndex[c] = d;
        }
    }
    for (const std::uint32_t p : out.patterns)
        scratch.indexOf[p] = -1;
}

GroupFactorization
factorizeGroup(const bitslice::BitPlane &plane, std::size_t row0,
               std::size_t m)
{
    GroupScratch scratch;
    GroupFactorization fact;
    factorizeGroup(plane, row0, m, scratch, fact);
    return fact;
}

MavResult
mergeActivations(const GroupFactorization &fact,
                 const std::vector<std::int8_t> &x)
{
    fatalIf(x.size() != fact.columnIndex.size(),
            "activation length mismatch");
    MavResult out;
    out.z.assign(fact.patterns.size(), 0);
    // uint8_t occupancy: vector<bool>'s bit proxies cost a shift+mask
    // read-modify-write in this innermost loop.
    std::vector<std::uint8_t> occupied(fact.patterns.size(), 0);
    for (std::size_t c = 0; c < x.size(); ++c) {
        const std::int32_t d = fact.columnIndex[c];
        if (d < 0)
            continue;
        if (occupied[d]) {
            out.z[d] += x[c];
            ++out.additions;
        } else {
            out.z[d] = x[c];
            occupied[d] = 1;
        }
    }
    return out;
}

ReconResult
reconstructOutputs(const GroupFactorization &fact, const MavResult &mav)
{
    panicIf(mav.z.size() != fact.patterns.size(), "MAV/pattern mismatch");
    ReconResult out;
    out.y.assign(fact.m, 0);
    std::vector<std::uint8_t> occupied(fact.m, 0);
    for (std::size_t d = 0; d < fact.patterns.size(); ++d) {
        const std::uint32_t p = fact.patterns[d];
        for (std::size_t i = 0; i < fact.m; ++i) {
            if (!bitAt(p, static_cast<unsigned>(i)))
                continue;
            if (occupied[i]) {
                out.y[i] += mav.z[d];
                ++out.additions;
            } else {
                out.y[i] = mav.z[d];
                occupied[i] = 1;
            }
        }
    }
    return out;
}

} // namespace mcbp::brcr
