#include "brcr/enumeration.hpp"

#include <unordered_map>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::brcr {

GroupFactorization
factorizeGroup(const bitslice::BitPlane &plane, std::size_t row0,
               std::size_t m)
{
    fatalIf(m == 0 || m > 16, "group size must be in [1, 16]");
    fatalIf(row0 >= plane.rows(), "group start row out of range");
    GroupFactorization fact;
    fact.m = m;
    fact.columnIndex.assign(plane.cols(), -1);

    std::vector<std::uint32_t> raw;
    plane.columnPatterns(row0, m, raw);

    std::unordered_map<std::uint32_t, std::int32_t> index_of;
    for (std::size_t c = 0; c < raw.size(); ++c) {
        const std::uint32_t p = raw[c];
        if (p == 0)
            continue;
        auto [it, inserted] = index_of.try_emplace(
            p, static_cast<std::int32_t>(fact.patterns.size()));
        if (inserted)
            fact.patterns.push_back(p);
        fact.columnIndex[c] = it->second;
    }
    return fact;
}

MavResult
mergeActivations(const GroupFactorization &fact,
                 const std::vector<std::int8_t> &x)
{
    fatalIf(x.size() != fact.columnIndex.size(),
            "activation length mismatch");
    MavResult out;
    out.z.assign(fact.patterns.size(), 0);
    std::vector<bool> occupied(fact.patterns.size(), false);
    for (std::size_t c = 0; c < x.size(); ++c) {
        const std::int32_t d = fact.columnIndex[c];
        if (d < 0)
            continue;
        if (occupied[d]) {
            out.z[d] += x[c];
            ++out.additions;
        } else {
            out.z[d] = x[c];
            occupied[d] = true;
        }
    }
    return out;
}

ReconResult
reconstructOutputs(const GroupFactorization &fact, const MavResult &mav)
{
    panicIf(mav.z.size() != fact.patterns.size(), "MAV/pattern mismatch");
    ReconResult out;
    out.y.assign(fact.m, 0);
    std::vector<bool> occupied(fact.m, false);
    for (std::size_t d = 0; d < fact.patterns.size(); ++d) {
        const std::uint32_t p = fact.patterns[d];
        for (std::size_t i = 0; i < fact.m; ++i) {
            if (!bitAt(p, static_cast<unsigned>(i)))
                continue;
            if (occupied[i]) {
                out.y[i] += mav.z[d];
                ++out.additions;
            } else {
                out.y[i] = mav.z[d];
                occupied[i] = true;
            }
        }
    }
    return out;
}

} // namespace mcbp::brcr
