/**
 * @file
 * Analytic BRCR cost model (paper section 3.1, "Key Insights").
 *
 * For a k-bit, H x H weight GEMV with mean bit sparsity bs and value
 * sparsity vs, the paper gives:
 *
 *   BRCR           : k * (H^2/m * (1 - bs) + H * 2^(m-1))   additions
 *   sparse BSC     : k *  H^2     * (1 - bs)                additions
 *   value sparsity : k *  H^2     * (1 - vs)                additions
 *
 * (the per-m-row-group forms are H(1-bs) + m 2^(m-1) and H m (1-bs)).
 * These formulas drive the Fig 18 design-space exploration and the 12.1x /
 * 3.8x headline reductions; the engine's measured counters are checked
 * against them in tests.
 */
#pragma once

#include <cstdint>
#include <cstddef>

namespace mcbp::brcr {

/** Inputs of the analytic model. */
struct CostModelParams
{
    std::size_t hidden = 4096;   ///< H.
    std::size_t groupSize = 4;   ///< m.
    int weightBits = 7;          ///< k (magnitude planes).
    double bitSparsity = 0.70;   ///< mean bs over planes.
    double valueSparsity = 0.07; ///< vs.
};

/** Additions for a full HxH GEMV under BRCR. */
double brcrAdds(const CostModelParams &p);

/** Additions for sparsity-aware bit-serial computing (no merging). */
double naiveBscAdds(const CostModelParams &p);

/** Additions for a value-level sparsity scheme. */
double valueSparsityAdds(const CostModelParams &p);

/** BRCR reduction factor vs naive BSC. */
double reductionVsBsc(const CostModelParams &p);

/** BRCR reduction factor vs value-level sparsity. */
double reductionVsValue(const CostModelParams &p);

/**
 * Expected fraction of all-zero m-bit group columns when plane bits are
 * i.i.d. zero with probability @p bit_sparsity: bs^m. Used by the BSTC
 * compression-ratio model and the Fig 18 DSE.
 */
double zeroColumnProbability(double bit_sparsity, std::size_t m);

/**
 * Expected number of *distinct* non-zero patterns in a group of H columns
 * drawn uniformly from the non-zero patterns (coupon-collector bound used
 * to reason about the pigeonhole argument of section 3.1).
 */
double expectedDistinctPatterns(std::size_t h, std::size_t m);

} // namespace mcbp::brcr
