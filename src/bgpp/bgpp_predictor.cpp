#include "bgpp/bgpp_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace mcbp::bgpp {

BgppPredictor::BgppPredictor(BgppConfig cfg) : cfg_(cfg)
{
    fatalIf(cfg_.rounds == 0 || cfg_.rounds > 7,
            "BGPP rounds must be in [1, 7]");
    fatalIf(cfg_.alpha < 0.0 || cfg_.alpha > 1.0,
            "alpha must be in [0, 1]");
    for (double a : cfg_.alphaSchedule)
        fatalIf(a < 0.0 || a > 1.0, "alpha schedule entry out of [0, 1]");
    fatalIf(cfg_.radius <= 0.0, "radius must be positive");
    fatalIf(cfg_.logitScale <= 0.0, "logit scale must be positive");
    fatalIf(cfg_.minKeep == 0, "minKeep must be at least 1");
}

BgppResult
BgppPredictor::predict(const std::vector<std::int8_t> &q,
                       const Int8Matrix &keys) const
{
    fatalIf(q.size() != keys.cols(), "query/key width mismatch");
    const std::size_t d = q.size();
    const std::size_t s = keys.rows();

    BgppResult out;
    out.estimates.assign(s, 0);
    std::vector<std::uint32_t> alive(s);
    for (std::size_t j = 0; j < s; ++j)
        alive[j] = static_cast<std::uint32_t>(j);

    // Score-domain threshold gap derived from the logit-domain radius;
    // alpha_r may vary per round (Eq 1).
    auto alpha_at = [&](std::size_t r) {
        if (cfg_.alphaSchedule.empty())
            return cfg_.alpha;
        return cfg_.alphaSchedule[std::min(
            r, cfg_.alphaSchedule.size() - 1)];
    };

    for (std::size_t r = 0; r < cfg_.rounds && !alive.empty(); ++r) {
        const double gap =
            alpha_at(r) * cfg_.radius / cfg_.logitScale;
        const int plane = 6 - static_cast<int>(r); // MSB magnitude first.
        panicIf(plane < 0, "round count exceeds magnitude planes");
        ++out.roundsRun;

        // Fetch this round's bits and update the partial estimates.
        for (std::uint32_t j : alive) {
            const std::int8_t *row = keys.rowPtr(j);
            std::int32_t contrib = 0;
            for (std::size_t i = 0; i < d; ++i) {
                const int v = row[i];
                const int mag = v < 0 ? -v : v;
                if ((mag >> plane) & 1)
                    contrib += v < 0 ? -static_cast<std::int32_t>(q[i])
                                     : static_cast<std::int32_t>(q[i]);
            }
            out.estimates[j] += contrib << plane;
            out.macs += d;
        }
        // Round 1 additionally loads the sign plane of every key.
        out.bitsFetched += static_cast<std::uint64_t>(alive.size()) * d *
                           (r == 0 ? 2 : 1);

        // Threshold update: track max/min over survivors (Eq 1).
        std::int32_t mx = std::numeric_limits<std::int32_t>::min();
        std::int32_t mn = std::numeric_limits<std::int32_t>::max();
        for (std::uint32_t j : alive) {
            mx = std::max(mx, out.estimates[j]);
            mn = std::min(mn, out.estimates[j]);
        }
        const double theta = static_cast<double>(mx) - gap;

        if (theta <= static_cast<double>(mn)) {
            // Clipping module clock-gated: nothing can be pruned.
            ++out.clockGatedRounds;
            out.survivorsPerRound.push_back(alive.size());
            continue;
        }

        std::vector<std::uint32_t> next;
        next.reserve(alive.size());
        for (std::uint32_t j : alive) {
            if (static_cast<double>(out.estimates[j]) >= theta)
                next.push_back(j);
        }
        if (next.size() < cfg_.minKeep) {
            // Keep the best minKeep survivors instead of over-pruning.
            std::vector<std::uint32_t> ranked = alive;
            std::partial_sort(
                ranked.begin(),
                ranked.begin() +
                    std::min(cfg_.minKeep, ranked.size()),
                ranked.end(), [&](std::uint32_t a, std::uint32_t b) {
                    return out.estimates[a] > out.estimates[b];
                });
            ranked.resize(std::min(cfg_.minKeep, ranked.size()));
            std::sort(ranked.begin(), ranked.end());
            next = std::move(ranked);
        }
        alive = std::move(next);
        out.survivorsPerRound.push_back(alive.size());
    }

    out.selected = std::move(alive);
    return out;
}

double
BgppPredictor::attentionSparsity(const BgppResult &r, std::size_t total_keys)
{
    if (total_keys == 0)
        return 0.0;
    return 1.0 - static_cast<double>(r.selected.size()) /
                     static_cast<double>(total_keys);
}

} // namespace mcbp::bgpp
