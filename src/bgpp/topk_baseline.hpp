/**
 * @file
 * Value-level top-k attention prediction baseline (paper section 2.2,
 * Fig 3): the three-stage pre-compute / top-k sort / formal compute
 * pipeline used by Spatten, FACT, SOFA et al., which BGPP improves on.
 *
 * The pre-compute stage loads a low-precision version of every key (the
 * top @p estimate_bits magnitude bits, 4 in the paper) and computes the
 * full estimated attention row; the sort stage picks the k highest keys.
 * Traffic and op accounting is exact so Fig 5(g) and Fig 17/23 can charge
 * the baseline its real prediction overhead.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"

namespace mcbp::bgpp {

/** Result of one top-k prediction. */
struct TopkResult
{
    std::vector<std::uint32_t> selected; ///< Key indices kept.
    std::uint64_t bitsFetched = 0;       ///< K-cache bits loaded.
    std::uint64_t macs = 0;              ///< Multiply-accumulates spent.
    std::vector<std::int32_t> estimates; ///< Estimated scores (all keys).
};

/**
 * Exact ground-truth top-k by full-precision scores (the oracle used for
 * recall metrics and the "theoretically optimal" traffic line).
 *
 * @param q query vector (d).
 * @param keys key matrix (S x d, row = key).
 * @param k number of keys to keep.
 */
TopkResult exactTopk(const std::vector<std::int8_t> &q,
                     const Int8Matrix &keys, std::size_t k);

/**
 * Value-level estimated top-k: scores computed from the top
 * @p estimate_bits magnitude bits (+ sign) of every key element.
 */
TopkResult valueTopk(const std::vector<std::int8_t> &q,
                     const Int8Matrix &keys, std::size_t k,
                     unsigned estimate_bits = 4);

/** Recall of @p predicted against @p truth (|intersection| / |truth|). */
double recall(const std::vector<std::uint32_t> &predicted,
              const std::vector<std::uint32_t> &truth);

} // namespace mcbp::bgpp
