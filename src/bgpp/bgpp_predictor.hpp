/**
 * @file
 * Bit-Grained Progressive Prediction (paper section 3.3, Fig 9, Eq (1)).
 *
 * BGPP estimates the attention row bit-serially, MSB magnitude plane
 * first. After each round r it computes the radius-based threshold
 *
 *     theta_r = max(A_hat_r) - alpha_r * radius            (Eq 1)
 *
 * (radius expressed in score units through a logit scale) and discards
 * keys whose partial estimate falls below theta_r; the next round fetches
 * the next magnitude plane of the *survivors only* — the early
 * termination that removes the K-cache traffic value-level top-k wastes.
 * If the threshold falls below the observed minimum, the clipping module
 * is clock-gated and the round filters nothing (tracked in the stats).
 *
 * Traffic accounting is bit-exact: round 1 fetches sign+MSB of all keys,
 * round r > 1 fetches one plane of the survivors.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bgpp/topk_baseline.hpp"
#include "common/matrix.hpp"

namespace mcbp::bgpp {

/** BGPP configuration. */
struct BgppConfig
{
    /** Filtering rounds = magnitude planes examined (<= 7 for INT8). */
    std::size_t rounds = 4;
    /** alpha_r in Eq (1); the paper sweeps 0.3-0.8, default 0.5-0.6. */
    double alpha = 0.55;
    /**
     * Optional per-round alpha_r schedule (Eq (1) indexes alpha by round
     * r). When non-empty, round r uses alphaSchedule[r] (clamped to the
     * last entry for later rounds) instead of the scalar alpha.
     */
    std::vector<double> alphaSchedule;
    /** Softmax radius (logit gap); the paper's empirical default is 3. */
    double radius = 3.0;
    /**
     * Conversion from integer partial scores to softmax logits:
     * logit = score * logitScale (set from quant scales / sqrt(d)).
     */
    double logitScale = 1.0;
    /** Never prune below this many survivors (decode needs >= 1 key). */
    std::size_t minKeep = 1;
};

/** Result of a BGPP prediction for one query row. */
struct BgppResult
{
    std::vector<std::uint32_t> selected;  ///< Surviving key indices.
    std::vector<std::int32_t> estimates;  ///< Final partial scores (all keys;
                                          ///< pruned keys keep last value).
    std::uint64_t bitsFetched = 0;        ///< K-cache bits loaded.
    std::uint64_t macs = 0;               ///< Bit-level MACs (AND+add).
    std::size_t roundsRun = 0;            ///< Rounds actually executed.
    std::size_t clockGatedRounds = 0;     ///< Rounds with gated clipping.
    /** Survivor count after each round (for the sparsity sweep). */
    std::vector<std::size_t> survivorsPerRound;
};

/**
 * The BGPP predictor. Stateless; per-call configuration.
 */
class BgppPredictor
{
  public:
    explicit BgppPredictor(BgppConfig cfg = {});

    const BgppConfig &config() const { return cfg_; }

    /**
     * Predict the vital keys for query @p q against @p keys (S x d,
     * INT8). Keys are processed in sign-magnitude form internally.
     */
    BgppResult predict(const std::vector<std::int8_t> &q,
                       const Int8Matrix &keys) const;

    /** Fraction of keys pruned by a result. */
    static double attentionSparsity(const BgppResult &r,
                                    std::size_t total_keys);

  private:
    BgppConfig cfg_;
};

} // namespace mcbp::bgpp
