#include "bgpp/topk_baseline.hpp"

#include <algorithm>
#include <numeric>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::bgpp {

namespace {

/** Pick the indices of the k largest scores (stable by index on ties). */
std::vector<std::uint32_t>
selectTopk(const std::vector<std::int32_t> &scores, std::size_t k)
{
    std::vector<std::uint32_t> idx(scores.size());
    std::iota(idx.begin(), idx.end(), 0u);
    k = std::min(k, idx.size());
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          if (scores[a] != scores[b])
                              return scores[a] > scores[b];
                          return a < b;
                      });
    idx.resize(k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

} // namespace

TopkResult
exactTopk(const std::vector<std::int8_t> &q, const Int8Matrix &keys,
          std::size_t k)
{
    fatalIf(q.size() != keys.cols(), "query/key width mismatch");
    TopkResult out;
    out.estimates.resize(keys.rows());
    for (std::size_t j = 0; j < keys.rows(); ++j) {
        std::int32_t acc = 0;
        const std::int8_t *row = keys.rowPtr(j);
        for (std::size_t i = 0; i < q.size(); ++i)
            acc += static_cast<std::int32_t>(q[i]) *
                   static_cast<std::int32_t>(row[i]);
        out.estimates[j] = acc;
        out.macs += q.size();
    }
    out.bitsFetched =
        static_cast<std::uint64_t>(keys.rows()) * keys.cols() * 8;
    out.selected = selectTopk(out.estimates, k);
    return out;
}

TopkResult
valueTopk(const std::vector<std::int8_t> &q, const Int8Matrix &keys,
          std::size_t k, unsigned estimate_bits)
{
    fatalIf(q.size() != keys.cols(), "query/key width mismatch");
    fatalIf(estimate_bits == 0 || estimate_bits > 8,
            "estimate bit width must be in [1, 8]");
    TopkResult out;
    out.estimates.resize(keys.rows());
    // Keep the top estimate_bits of the 7-bit magnitude (+ sign): a
    // 4-bit estimate keeps magnitude bits 7..4 and zeroes 3..1.
    const unsigned drop = estimate_bits >= 8 ? 0 : 7 - (estimate_bits - 1);
    for (std::size_t j = 0; j < keys.rows(); ++j) {
        std::int32_t acc = 0;
        const std::int8_t *row = keys.rowPtr(j);
        for (std::size_t i = 0; i < q.size(); ++i) {
            const int v = row[i];
            const int mag = (v < 0 ? -v : v) >> drop << drop;
            const int approx = v < 0 ? -mag : mag;
            acc += static_cast<std::int32_t>(q[i]) * approx;
        }
        out.estimates[j] = acc;
        out.macs += q.size();
    }
    // The baseline loads (estimate_bits + sign) of every key element.
    out.bitsFetched = static_cast<std::uint64_t>(keys.rows()) *
                      keys.cols() * (estimate_bits + 1);
    out.selected = selectTopk(out.estimates, k);
    return out;
}

double
recall(const std::vector<std::uint32_t> &predicted,
       const std::vector<std::uint32_t> &truth)
{
    if (truth.empty())
        return 1.0;
    std::size_t hit = 0;
    // Both lists are sorted by construction.
    std::size_t i = 0;
    for (std::uint32_t t : truth) {
        while (i < predicted.size() && predicted[i] < t)
            ++i;
        if (i < predicted.size() && predicted[i] == t)
            ++hit;
    }
    return static_cast<double>(hit) / static_cast<double>(truth.size());
}

} // namespace mcbp::bgpp
