/**
 * @file
 * mcbp-lint — source-level enforcement of the repo's determinism and
 * concurrency contracts.
 *
 * The runtime tests prove the contracts hold today; this linter keeps
 * future PRs from breaking them by construction. It tokenizes every
 * C++ source under src/, bench/ and examples/ (comments and string
 * literal contents stripped, so patterns cannot false-positive on
 * documentation) and reports file:line findings for:
 *
 *   raw-thread             std thread/async/OpenMP/pthread primitives
 *                          outside common/parallel — all host
 *                          parallelism must go through the
 *                          deterministic pool (index-ordered joins,
 *                          bit-identical at every thread count).
 *   raw-rng                std random engines / rand() / random_device
 *                          outside common/rng — stochastic work must
 *                          draw from the portable, explicitly seeded
 *                          (and stream-separated) mcbp::Rng.
 *   wall-clock             host time sources inside src/sim and
 *                          src/engine — simulator and serving code may
 *                          only consume simulated time, never the
 *                          machine's clocks (benches may time walls).
 *   unordered-accumulation range-for over an unordered container
 *                          whose body accumulates (+=) or emits
 *                          ordered output — iteration order is
 *                          unspecified, so float sums and logs would
 *                          differ run to run.
 *   stray-getenv           any getenv outside the env::get registry
 *                          (common/env.hpp documents every MCBP_*
 *                          knob; the registry is the one sanctioned,
 *                          suppressed call site).
 *   include-hygiene        a .cpp must include its own header first
 *                          (catches headers that don't stand alone),
 *                          and nothing may include libstdc++ internal
 *                          headers (a "bits/" path).
 *   bad-suppression        a malformed suppression: unknown rule name
 *                          or missing justification text. Not itself
 *                          suppressible.
 *
 * Suppression syntax: a comment containing the tool's name followed
 * by a colon (the marker), then `allow(` a rule name `)`, then `:`
 * and a non-empty one-line justification — placed on the offending
 * line, or on a comment-only line directly above it. The
 * justification is mandatory; see README "Correctness tooling" for a
 * literal example (spelling one here would register a suppression in
 * this very file).
 *
 * The analysis is a tokenizer, not a compiler: it trades soundness
 * for zero build-time dependencies, and the rules are written so the
 * cheap approximation errs toward reporting. Anything it flags is
 * either fixed or carries a justified suppression — `ctest -R
 * lint_src` keeps the real tree at zero findings.
 */
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mcbp::lint {

/** One diagnostic: file:line, the rule that fired, and why. */
struct Finding
{
    std::string file;
    std::size_t line = 0; ///< 1-based.
    std::string rule;
    std::string message;
};

/** A linted tree: every finding plus how many files were scanned. */
struct LintResult
{
    std::vector<Finding> findings;
    std::size_t filesScanned = 0;
};

/** Names of every rule (validates allow() clauses; docs of record). */
const std::vector<std::string> &ruleNames();

/**
 * Lint one in-memory translation unit. @p path scopes the
 * path-dependent rules (allowed homes, wall-clock's src/sim+src/engine
 * restriction, self-header matching) and is echoed into findings;
 * use repo-relative paths like "src/engine/foo.cpp".
 */
std::vector<Finding> lintSource(const std::string &path,
                                const std::string &text);

/**
 * Lint every *.cpp / *.hpp / *.h under @p root's @p subdirs
 * (deterministic order: paths sorted). Unreadable files are reported
 * as findings under rule "io-error".
 */
LintResult lintTree(const std::string &root,
                    const std::vector<std::string> &subdirs);

/** Render findings as `file:line: [rule] message` lines. */
std::string toText(const LintResult &result);

/** Render the result as a stable JSON document (CI artifact). */
std::string toJson(const LintResult &result);

} // namespace mcbp::lint
