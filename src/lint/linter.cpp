#include "lint/linter.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace mcbp::lint {

namespace {

// ---------------------------------------------------------------------------
// Lexing: split a TU into a code stream and a comment stream of the
// SAME length (non-members replaced by spaces, newlines kept in both),
// so offsets and line numbers stay shared. String and char literal
// CONTENTS are blanked from the code stream (the delimiters remain),
// which is what lets rule patterns ignore documentation and message
// text wholesale.
// ---------------------------------------------------------------------------

struct Streams
{
    std::string code;     ///< Source with comments/literals blanked.
    std::string comments; ///< Comment text only (rest blanked).
};

Streams
splitStreams(const std::string &text)
{
    enum class State
    {
        Normal,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    Streams out;
    out.code.assign(text.size(), ' ');
    out.comments.assign(text.size(), ' ');
    State state = State::Normal;
    std::string rawDelim; // the )delim" closer of a raw string
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') { // newlines live in both streams, every state
            out.code[i] = '\n';
            out.comments[i] = '\n';
            if (state == State::LineComment)
                state = State::Normal;
            continue;
        }
        switch (state) {
        case State::Normal:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i; // swallow the marker itself
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == '"') {
                // R"delim( opens a raw string; a preceding encoding
                // prefix (u8R etc.) still ends in R.
                if (i > 0 && text[i - 1] == 'R' &&
                    (i < 2 || !std::isalnum(static_cast<unsigned char>(
                                  text[i - 2])))) {
                    std::size_t j = i + 1;
                    while (j < text.size() && text[j] != '(')
                        ++j;
                    rawDelim =
                        ")" + text.substr(i + 1, j - i - 1) + "\"";
                    state = State::RawString;
                    out.code[i] = '"';
                } else {
                    state = State::String;
                    out.code[i] = '"';
                }
            } else if (c == '\'') {
                // Skip digit separators (1'000'000): only treat ' as
                // a char literal when not sandwiched by digits/idents.
                const bool sep =
                    i > 0 &&
                    std::isalnum(static_cast<unsigned char>(text[i - 1]));
                if (sep) {
                    out.code[i] = c;
                } else {
                    state = State::Char;
                    out.code[i] = '\'';
                }
            } else {
                out.code[i] = c;
            }
            break;
        case State::LineComment:
            out.comments[i] = c;
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                ++i;
                state = State::Normal;
            } else {
                out.comments[i] = c;
            }
            break;
        case State::String:
            if (c == '\\') {
                ++i; // escaped char (newline-in-literal is ill-formed)
            } else if (c == '"') {
                out.code[i] = '"';
                state = State::Normal;
            }
            break;
        case State::Char:
            if (c == '\\') {
                ++i;
            } else if (c == '\'') {
                out.code[i] = '\'';
                state = State::Normal;
            }
            break;
        case State::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                out.code[i] = '"';
                state = State::Normal;
            }
            break;
        }
    }
    return out;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Offsets where @p pattern occurs with identifier boundaries (when
 *  the pattern's own edge characters are identifier characters). */
std::vector<std::size_t>
findAll(const std::string &code, const std::string &pattern)
{
    std::vector<std::size_t> hits;
    if (pattern.empty())
        return hits;
    const bool boundedFront = isIdentChar(pattern.front());
    const bool boundedBack = isIdentChar(pattern.back());
    std::size_t pos = 0;
    while ((pos = code.find(pattern, pos)) != std::string::npos) {
        const bool okFront =
            !boundedFront || pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + pattern.size();
        const bool okBack = !boundedBack || end >= code.size() ||
                            !isIdentChar(code[end]);
        if (okFront && okBack)
            hits.push_back(pos);
        pos += 1;
    }
    return hits;
}

/** 1-based line of @p offset given sorted line-start offsets. */
std::size_t
lineOf(const std::vector<std::size_t> &lineStarts, std::size_t offset)
{
    const auto it = std::upper_bound(lineStarts.begin(),
                                     lineStarts.end(), offset);
    return static_cast<std::size_t>(it - lineStarts.begin());
}

std::vector<std::size_t>
computeLineStarts(const std::string &text)
{
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < text.size(); ++i)
        if (text[i] == '\n')
            starts.push_back(i + 1);
    return starts;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
pathContains(const std::string &path, const std::string &needle)
{
    return path.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Suppressions. The marker is the word "mcbp-lint" + ':' followed by
// an allow clause naming one rule and a mandatory ': justification'.
// A comment-only line suppresses the next line; otherwise the
// suppression applies to its own line.
// ---------------------------------------------------------------------------

// Assembled from pieces so the linter never flags its own source as
// carrying a (justification-free) suppression marker.
const std::string kMarker = std::string("mcbp-lint") + ":";

struct Suppressions
{
    /** line -> rules allowed there. */
    std::map<std::size_t, std::set<std::string>> allowed;
    std::vector<Finding> malformed; ///< bad-suppression findings.
};

Suppressions
parseSuppressions(const std::string &path,
                  const std::vector<std::string> &commentLines,
                  const std::vector<std::string> &codeLines)
{
    Suppressions out;
    for (std::size_t li = 0; li < commentLines.size(); ++li) {
        const std::string &comment = commentLines[li];
        std::size_t pos = 0;
        while ((pos = comment.find(kMarker, pos)) != std::string::npos) {
            const std::size_t lineNo = li + 1;
            std::size_t p = pos + kMarker.size();
            while (p < comment.size() &&
                   std::isspace(static_cast<unsigned char>(comment[p])))
                ++p;
            const std::string allowKw = "allow(";
            if (comment.compare(p, allowKw.size(), allowKw) != 0) {
                out.malformed.push_back(
                    {path, lineNo, "bad-suppression",
                     "marker without an allow(<rule>) clause"});
                pos = p;
                continue;
            }
            p += allowKw.size();
            const std::size_t close = comment.find(')', p);
            if (close == std::string::npos) {
                out.malformed.push_back({path, lineNo, "bad-suppression",
                                         "unterminated allow clause"});
                break;
            }
            const std::string rule = trim(comment.substr(p, close - p));
            p = close + 1;
            const auto &known = ruleNames();
            if (std::find(known.begin(), known.end(), rule) ==
                    known.end() ||
                rule == "bad-suppression") {
                out.malformed.push_back(
                    {path, lineNo, "bad-suppression",
                     "unknown or unsuppressible rule '" + rule + "'"});
                pos = p;
                continue;
            }
            while (p < comment.size() &&
                   std::isspace(static_cast<unsigned char>(comment[p])))
                ++p;
            std::string justification;
            if (p < comment.size() && comment[p] == ':')
                justification = trim(comment.substr(p + 1));
            if (justification.empty()) {
                out.malformed.push_back(
                    {path, lineNo, "bad-suppression",
                     "suppression of '" + rule +
                         "' lacks a ': <one-line justification>'"});
                pos = p;
                continue;
            }
            // Comment-only lines shield the line below; inline
            // comments shield their own line.
            const bool ownLine = li < codeLines.size() &&
                                 trim(codeLines[li]).empty();
            out.allowed[ownLine ? lineNo + 1 : lineNo].insert(rule);
            pos = p;
        }
    }
    return out;
}

// ---------------------------------------------------------------------------
// Pattern tables.
// ---------------------------------------------------------------------------

struct PatternRule
{
    const char *rule;
    const char *allowedPathPart; ///< nullptr = no sanctioned home.
    /** Restrict the rule to paths containing one of these (empty =
     *  everywhere). */
    std::vector<const char *> scopedTo;
    std::vector<const char *> patterns;
    const char *message;
};

const std::vector<PatternRule> &
patternRules()
{
    static const std::vector<PatternRule> rules = {
        {"raw-thread",
         "common/parallel",
         {},
         {"std::thread", "std::jthread", "std::async", "pthread_create",
          "pthread_join", "omp_set_num_threads", "omp_get_num_threads",
          "#pragma omp", "std::counting_semaphore", "std::barrier",
          "std::latch"},
         "raw threading primitive outside common/parallel; use "
         "parallel::parallelFor/parallelMap (deterministic pool, "
         "index-ordered joins)"},
        {"raw-rng",
         "common/rng",
         {},
         {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
          "random_device", "default_random_engine", "rand", "srand",
          "rand_r", "drand48", "lrand48"},
         "raw RNG outside common/rng; draw from the explicitly seeded "
         "mcbp::Rng so streams stay separated and reproducible"},
        {"wall-clock",
         nullptr,
         {"src/sim", "src/engine"},
         {"system_clock", "steady_clock", "high_resolution_clock",
          "utc_clock", "file_clock", "clock_gettime", "gettimeofday",
          "timespec_get", "localtime", "gmtime", "mktime",
          "std::time"},
         "host time source inside the simulator/engine layers; these "
         "may only consume simulated time (benches may time walls)"},
        {"stray-getenv",
         nullptr,
         {},
         {"getenv", "secure_getenv"},
         "environment read outside the env::get registry; declare the "
         "knob in common/env.hpp (name, default, consumer) and read "
         "it through env::get"},
    };
    return rules;
}

// ---------------------------------------------------------------------------
// unordered-accumulation: track names declared with an unordered
// container type, then flag range-fors over them whose body
// accumulates or emits in iteration order.
// ---------------------------------------------------------------------------

std::size_t
skipAngles(const std::string &code, std::size_t pos)
{
    // pos is at '<'; returns index one past the matching '>'.
    int depth = 0;
    for (std::size_t i = pos; i < code.size(); ++i) {
        if (code[i] == '<')
            ++depth;
        else if (code[i] == '>' && --depth == 0)
            return i + 1;
    }
    return code.size();
}

std::set<std::string>
unorderedNames(const std::string &code)
{
    std::set<std::string> names;
    for (const char *type :
         {"unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"}) {
        for (std::size_t hit : findAll(code, type)) {
            std::size_t p = hit + std::strlen(type);
            while (p < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[p])))
                ++p;
            if (p >= code.size() || code[p] != '<')
                continue;
            p = skipAngles(code, p);
            while (p < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[p])) ||
                    code[p] == '&' || code[p] == '*'))
                ++p;
            std::size_t q = p;
            while (q < code.size() && isIdentChar(code[q]))
                ++q;
            const std::string name = code.substr(p, q - p);
            if (!name.empty() &&
                !std::isdigit(static_cast<unsigned char>(name[0])) &&
                name != "const")
                names.insert(name);
        }
    }
    return names;
}

std::size_t
matchParen(const std::string &code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '(')
            ++depth;
        else if (code[i] == ')' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

std::size_t
matchBrace(const std::string &code, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '{')
            ++depth;
        else if (code[i] == '}' && --depth == 0)
            return i;
    }
    return std::string::npos;
}

void
checkUnorderedAccumulation(const std::string &path,
                           const std::string &code,
                           const std::vector<std::size_t> &lineStarts,
                           std::vector<Finding> &out)
{
    const std::set<std::string> tracked = unorderedNames(code);
    for (std::size_t forPos : findAll(code, "for")) {
        std::size_t p = forPos + 3;
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p])))
            ++p;
        if (p >= code.size() || code[p] != '(')
            continue;
        const std::size_t closeParen = matchParen(code, p);
        if (closeParen == std::string::npos)
            continue;
        const std::string head = code.substr(p + 1, closeParen - p - 1);
        // The range-for ':' at paren depth 0 (never part of a '::').
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t i = 0; i < head.size(); ++i) {
            const char c = head[i];
            if (c == '(' || c == '[' || c == '{')
                ++depth;
            else if (c == ')' || c == ']' || c == '}')
                --depth;
            else if (c == ':' && depth == 0 &&
                     (i + 1 >= head.size() || head[i + 1] != ':') &&
                     (i == 0 || head[i - 1] != ':')) {
                colon = i;
                break;
            }
        }
        if (colon == std::string::npos)
            continue;
        const std::string range = head.substr(colon + 1);
        bool overUnordered = pathContains(range, "unordered_");
        for (const std::string &name : tracked)
            if (!overUnordered && !findAll(range, name).empty())
                overUnordered = true;
        if (!overUnordered)
            continue;
        // Body: a braced block or the single statement up to ';'.
        std::size_t bodyBegin = closeParen + 1;
        while (bodyBegin < code.size() &&
               std::isspace(static_cast<unsigned char>(code[bodyBegin])))
            ++bodyBegin;
        std::size_t bodyEnd;
        if (bodyBegin < code.size() && code[bodyBegin] == '{')
            bodyEnd = matchBrace(code, bodyBegin);
        else
            bodyEnd = code.find(';', bodyBegin);
        if (bodyEnd == std::string::npos)
            continue;
        const std::string body =
            code.substr(bodyBegin, bodyEnd - bodyBegin + 1);
        const bool accumulates =
            body.find("+=") != std::string::npos ||
            body.find("<<") != std::string::npos ||
            !findAll(body, "push_back").empty() ||
            !findAll(body, "emplace_back").empty() ||
            !findAll(body, "append").empty();
        if (accumulates)
            out.push_back(
                {path, lineOf(lineStarts, forPos),
                 "unordered-accumulation",
                 "range-for over an unordered container accumulates or "
                 "emits in iteration order, which is unspecified; "
                 "iterate a sorted view (or an ordered container) so "
                 "results are bit-identical run to run"});
    }
}

// ---------------------------------------------------------------------------
// include-hygiene: runs over the ORIGINAL text (quoted include paths
// would be blanked from the code stream).
// ---------------------------------------------------------------------------

struct IncludeDirective
{
    std::string path;
    std::size_t line; ///< 1-based.
};

std::vector<IncludeDirective>
parseIncludes(const std::string &text)
{
    std::vector<IncludeDirective> out;
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    bool inBlockComment = false;
    while (std::getline(in, line)) {
        ++lineNo;
        std::string t = trim(line);
        if (inBlockComment) {
            const std::size_t close = t.find("*/");
            if (close == std::string::npos)
                continue;
            inBlockComment = false;
            t = trim(t.substr(close + 2));
        }
        if (t.rfind("/*", 0) == 0 &&
            t.find("*/", 2) == std::string::npos) {
            inBlockComment = true;
            continue;
        }
        if (t.empty() || t[0] != '#')
            continue;
        std::size_t p = 1;
        while (p < t.size() &&
               std::isspace(static_cast<unsigned char>(t[p])))
            ++p;
        if (t.compare(p, 7, "include") != 0)
            continue;
        p += 7;
        while (p < t.size() &&
               std::isspace(static_cast<unsigned char>(t[p])))
            ++p;
        if (p >= t.size() || (t[p] != '<' && t[p] != '"'))
            continue;
        const char closer = t[p] == '<' ? '>' : '"';
        const std::size_t end = t.find(closer, p + 1);
        if (end == std::string::npos)
            continue;
        out.push_back({t.substr(p + 1, end - p - 1), lineNo});
    }
    return out;
}

std::string
baseName(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

void
checkIncludeHygiene(const std::string &path, const std::string &text,
                    std::vector<Finding> &out)
{
    const std::vector<IncludeDirective> includes = parseIncludes(text);
    for (const IncludeDirective &inc : includes) {
        if (inc.path.rfind("bits/", 0) == 0 ||
            inc.path.find("/bits/") != std::string::npos)
            out.push_back({path, inc.line, "include-hygiene",
                           "libstdc++ internal header '" + inc.path +
                               "' included; use the standard header"});
    }
    const std::string base = baseName(path);
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos || base.substr(dot) != ".cpp")
        return;
    const std::string stem = base.substr(0, dot);
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "" : path.substr(0, slash);
    for (std::size_t i = 0; i < includes.size(); ++i) {
        const std::string incBase = baseName(includes[i].path);
        // "Self" needs the directory to agree too: examples/serving.cpp
        // including engine/serving.hpp is a consumer, not the impl.
        const std::size_t incSlash = includes[i].path.find_last_of('/');
        const std::string incDir =
            incSlash == std::string::npos
                ? ""
                : includes[i].path.substr(0, incSlash);
        const bool dirMatches =
            incDir.empty() || dir == incDir ||
            (dir.size() > incDir.size() &&
             dir.compare(dir.size() - incDir.size() - 1, 1, "/") == 0 &&
             dir.compare(dir.size() - incDir.size(), incDir.size(),
                         incDir) == 0);
        if ((incBase == stem + ".hpp" || incBase == stem + ".h") &&
            dirMatches) {
            if (i != 0)
                out.push_back(
                    {path, includes[i].line, "include-hygiene",
                     "a .cpp must include its own header first (so the "
                     "header is proven self-contained); '" +
                         includes[i].path + "' comes after " +
                         std::to_string(i) + " other include(s)"});
            break; // only the first matching header is "self"
        }
    }
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    return out;
}

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "raw-thread",     "raw-rng",
        "wall-clock",     "unordered-accumulation",
        "stray-getenv",   "include-hygiene",
        "bad-suppression"};
    return names;
}

std::vector<Finding>
lintSource(const std::string &path, const std::string &text)
{
    const Streams streams = splitStreams(text);
    const std::vector<std::size_t> lineStarts =
        computeLineStarts(streams.code);
    const Suppressions supp = parseSuppressions(
        path, splitLines(streams.comments), splitLines(streams.code));

    std::vector<Finding> raw;
    for (const PatternRule &rule : patternRules()) {
        if (rule.allowedPathPart != nullptr &&
            pathContains(path, rule.allowedPathPart))
            continue;
        if (!rule.scopedTo.empty()) {
            bool inScope = false;
            for (const char *dir : rule.scopedTo)
                inScope = inScope || pathContains(path, dir);
            if (!inScope)
                continue;
        }
        for (const char *pattern : rule.patterns)
            for (std::size_t hit : findAll(streams.code, pattern))
                raw.push_back({path, lineOf(lineStarts, hit), rule.rule,
                               std::string("'") + pattern + "': " +
                                   rule.message});
    }
    checkUnorderedAccumulation(path, streams.code, lineStarts, raw);
    checkIncludeHygiene(path, text, raw);

    std::vector<Finding> findings = supp.malformed;
    for (Finding &f : raw) {
        const auto it = supp.allowed.find(f.line);
        if (it != supp.allowed.end() && it->second.count(f.rule))
            continue; // justified suppression
        findings.push_back(std::move(f));
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    // One (line, rule) may be hit by several patterns; report once.
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.file == b.file &&
                                          a.line == b.line &&
                                          a.rule == b.rule;
                               }),
                   findings.end());
    return findings;
}

LintResult
lintTree(const std::string &root,
         const std::vector<std::string> &subdirs)
{
    namespace fs = std::filesystem;
    LintResult result;
    std::vector<fs::path> files;
    for (const std::string &sub : subdirs) {
        const fs::path dir = fs::path(root) / sub;
        if (!fs::exists(dir))
            continue;
        for (const auto &entry : fs::recursive_directory_iterator(dir)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext == ".cpp" || ext == ".hpp" || ext == ".h")
                files.push_back(entry.path());
        }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path &file : files) {
        const std::string display =
            fs::proximate(file, root).generic_string();
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            result.findings.push_back(
                {display, 0, "io-error", "cannot read file"});
            continue;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        ++result.filesScanned;
        std::vector<Finding> found = lintSource(display, buf.str());
        result.findings.insert(result.findings.end(), found.begin(),
                               found.end());
    }
    return result;
}

std::string
toText(const LintResult &result)
{
    std::string out;
    for (const Finding &f : result.findings) {
        out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule +
               "] " + f.message + "\n";
    }
    out += std::to_string(result.findings.size()) + " finding(s) in " +
           std::to_string(result.filesScanned) + " file(s)\n";
    return out;
}

std::string
toJson(const LintResult &result)
{
    std::string out = "{\n  \"tool\": \"mcbp_lint\",\n";
    out += "  \"filesScanned\": " +
           std::to_string(result.filesScanned) + ",\n";
    out += "  \"findings\": [";
    for (std::size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"file\": \"" + jsonEscape(f.file) +
               "\", \"line\": " + std::to_string(f.line) +
               ", \"rule\": \"" + jsonEscape(f.rule) +
               "\", \"message\": \"" + jsonEscape(f.message) + "\"}";
    }
    out += result.findings.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace mcbp::lint
