#include "bitslice/sign_magnitude.hpp"

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::bitslice {

SignMagnitude
decompose(const Int8Matrix &w, quant::BitWidth bw)
{
    const int planes = quant::magnitudeBits(bw);
    const int level = quant::maxLevel(bw);
    SignMagnitude sm;
    sm.rows = w.rows();
    sm.cols = w.cols();
    sm.sign = BitPlane(w.rows(), w.cols());
    sm.magnitude.assign(planes, BitPlane(w.rows(), w.cols()));
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            const int v = w.at(r, c);
            fatalIf(v > level || v < -level,
                    "value out of range for the requested bit width");
            const unsigned mag = static_cast<unsigned>(v < 0 ? -v : v);
            if (v < 0)
                sm.sign.set(r, c, true);
            for (int p = 0; p < planes; ++p) {
                if ((mag >> p) & 1u)
                    sm.magnitude[p].set(r, c, true);
            }
        }
    }
    return sm;
}

Int8Matrix
reconstruct(const SignMagnitude &sm)
{
    Int8Matrix w(sm.rows, sm.cols);
    for (std::size_t r = 0; r < sm.rows; ++r) {
        for (std::size_t c = 0; c < sm.cols; ++c) {
            int mag = 0;
            for (std::size_t p = 0; p < sm.magnitude.size(); ++p) {
                if (sm.magnitude[p].get(r, c))
                    mag |= 1 << p;
            }
            w.at(r, c) = static_cast<std::int8_t>(
                sm.sign.get(r, c) ? -mag : mag);
        }
    }
    return w;
}

std::vector<std::int32_t>
bitSerialGemv(const SignMagnitude &sm, const std::vector<std::int8_t> &x)
{
    fatalIf(x.size() != sm.cols, "bitSerialGemv shape mismatch");
    std::vector<std::int32_t> y(sm.rows, 0);
    for (std::size_t p = 0; p < sm.magnitude.size(); ++p) {
        const BitPlane &plane = sm.magnitude[p];
        const std::int32_t weight = 1 << p;
        for (std::size_t r = 0; r < sm.rows; ++r) {
            std::int32_t acc = 0;
            for (std::size_t c = 0; c < sm.cols; ++c) {
                if (!plane.get(r, c))
                    continue;
                const std::int32_t xv = x[c];
                acc += sm.sign.get(r, c) ? -xv : xv;
            }
            y[r] += weight * acc;
        }
    }
    return y;
}

SignSplit
decomposeSignSplit(const Int8Matrix &w, quant::BitWidth bw)
{
    Int8Matrix pos(w.rows(), w.cols());
    Int8Matrix neg(w.rows(), w.cols());
    for (std::size_t r = 0; r < w.rows(); ++r) {
        for (std::size_t c = 0; c < w.cols(); ++c) {
            const int v = w.at(r, c);
            pos.at(r, c) = static_cast<std::int8_t>(v > 0 ? v : 0);
            neg.at(r, c) = static_cast<std::int8_t>(v < 0 ? -v : 0);
        }
    }
    SignSplit out;
    out.positive = decompose(pos, bw);
    out.negative = decompose(neg, bw);
    return out;
}

} // namespace mcbp::bitslice
