#include "bitslice/bit_plane.hpp"

#include <bit>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::bitslice {

BitPlane::BitPlane(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), wordsPerRow_((cols + 63) / 64),
      words_(rows * wordsPerRow_, 0)
{
}

std::uint64_t
BitPlane::countOnes() const
{
    std::uint64_t n = 0;
    for (auto w : words_)
        n += std::popcount(w);
    return n;
}

std::uint64_t
BitPlane::countOnesInRow(std::size_t r) const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < wordsPerRow_; ++i)
        n += std::popcount(words_[r * wordsPerRow_ + i]);
    return n;
}

double
BitPlane::sparsity() const
{
    if (rows_ == 0 || cols_ == 0)
        return 1.0;
    const double total = static_cast<double>(rows_) * cols_;
    return 1.0 - static_cast<double>(countOnes()) / total;
}

std::uint32_t
BitPlane::columnPattern(std::size_t row0, std::size_t m, std::size_t c) const
{
    panicIf(m > 16, "group size > 16 unsupported");
    std::uint32_t p = 0;
    const std::size_t last = std::min(row0 + m, rows_);
    for (std::size_t r = row0; r < last; ++r)
        p |= static_cast<std::uint32_t>(get(r, c)) << (r - row0);
    return p;
}

void
BitPlane::columnPatterns(std::size_t row0, std::size_t m,
                         std::vector<std::uint32_t> &out) const
{
    panicIf(m > 16, "group size > 16 unsupported");
    out.assign(cols_, 0);
    const std::size_t last = std::min(row0 + m, rows_);
    for (std::size_t r = row0; r < last; ++r) {
        const std::uint64_t *row = words_.data() + r * wordsPerRow_;
        const std::uint32_t shift = static_cast<std::uint32_t>(r - row0);
        for (std::size_t c = 0; c < cols_; ++c) {
            const std::uint64_t bit = (row[c >> 6] >> (c & 63)) & 1u;
            out[c] |= static_cast<std::uint32_t>(bit) << shift;
        }
    }
}

bool
BitPlane::operator==(const BitPlane &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           words_ == other.words_;
}

} // namespace mcbp::bitslice
