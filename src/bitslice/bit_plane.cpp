#include "bitslice/bit_plane.hpp"

#include <bit>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::bitslice {

namespace {

/** Words per 64-byte line: the row-stride quantum. */
constexpr std::size_t kLineWords =
    common::AlignedBuffer<std::uint64_t>::kLineElems;

} // namespace

BitPlane::BitPlane(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), wordsPerRow_((cols + 63) / 64),
      rowStride_((wordsPerRow_ + kLineWords - 1) / kLineWords *
                 kLineWords),
      words_(rows * rowStride_)
{
}

std::uint64_t
BitPlane::countOnes() const
{
    // Stride padding is all-zero, so the whole buffer counts in one
    // dispatched scan.
    return popcountSpan(words_.data(), words_.size());
}

std::uint64_t
BitPlane::countOnesInRow(std::size_t r) const
{
    return popcountSpan(rowData(r), rowStride_);
}

double
BitPlane::sparsity() const
{
    if (rows_ == 0 || cols_ == 0)
        return 1.0;
    const double total = static_cast<double>(rows_) * cols_;
    return 1.0 - static_cast<double>(countOnes()) / total;
}

std::uint32_t
BitPlane::columnPattern(std::size_t row0, std::size_t m, std::size_t c) const
{
    panicIf(m > 16, "group size > 16 unsupported");
    std::uint32_t p = 0;
    const std::size_t last = std::min(row0 + m, rows_);
    for (std::size_t r = row0; r < last; ++r)
        p |= static_cast<std::uint32_t>(get(r, c)) << (r - row0);
    return p;
}

std::size_t
BitPlane::patternsAt(std::size_t row0, std::size_t m, std::size_t word,
                     std::uint32_t *out) const
{
    panicIf(m > 16, "group size > 16 unsupported");
    panicIf(word >= wordsPerRow_, "word index out of range");
    const std::size_t col0 = word << 6;
    const std::size_t width = std::min<std::size_t>(64, cols_ - col0);
    const std::size_t last = std::min(row0 + m, rows_);

    // One packed word per group row covers all 64 columns of the block.
    std::uint64_t rowWords[16];
    std::uint64_t any = 0;
    std::size_t nrows = 0;
    for (std::size_t r = row0; r < last; ++r) {
        const std::uint64_t w = words_[r * rowStride_ + word];
        rowWords[nrows++] = w;
        any |= w;
    }

    for (std::size_t c = 0; c < 64; ++c)
        out[c] = 0;
    // Walk only the columns where any group row has a bit (countr_zero
    // over the OR word): zero columns — the common case on the sparse
    // planes — cost nothing beyond the blanking above.
    while (any != 0) {
        const int c = std::countr_zero(any);
        any &= any - 1;
        std::uint32_t p = 0;
        for (std::size_t r = 0; r < nrows; ++r)
            p |= static_cast<std::uint32_t>((rowWords[r] >> c) & 1u)
                 << r;
        out[c] = p;
    }
    return width;
}

void
BitPlane::columnPatterns(std::size_t row0, std::size_t m,
                         std::vector<std::uint32_t> &out) const
{
    panicIf(m > 16, "group size > 16 unsupported");
    out.resize(cols_);
    for (std::size_t w = 0; w < wordsPerRow_; ++w) {
        if (((w + 1) << 6) <= cols_) { // full block: write in place.
            (void)patternsAt(row0, m, w, out.data() + (w << 6));
        } else { // final partial word: stage through a 64-slot buffer.
            std::uint32_t block[64];
            const std::size_t width = patternsAt(row0, m, w, block);
            std::uint32_t *dst = out.data() + (w << 6);
            for (std::size_t c = 0; c < width; ++c)
                dst[c] = block[c];
        }
    }
}

bool
BitPlane::operator==(const BitPlane &other) const
{
    // Equal dims imply equal strides, and padding is zero on both
    // sides, so whole-buffer comparison is exact.
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           equalSpan(words_.data(), other.words_.data(), words_.size());
}

} // namespace mcbp::bitslice
