/**
 * @file
 * Packed 1-bit matrices ("bit-slice matrices" in the paper, section 2.3).
 *
 * A BitPlane stores one bit position of a sign-magnitude weight matrix:
 * rows x cols single bits, packed 64 columns per word. The BRCR engine
 * extracts m-row column patterns from it, and the BSTC codec compresses it
 * group-column by group-column.
 */
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/aligned_buffer.hpp"

namespace mcbp::bitslice {

/**
 * A rows x cols binary matrix packed in 64-bit words (row-major).
 *
 * Storage contract (the enabler of the SIMD plane-scan backend): rows
 * live at a fixed stride of whole 64-byte cache lines inside a
 * 64-byte-aligned buffer (common/AlignedBuffer), and every bit beyond
 * cols() — the tail-word columns and the stride padding words — is
 * zero. A vector load that starts at any in-row word therefore never
 * straddles into the next row's data, and whole-row kernels consume
 * rowStride() words with no tail branch at all. External code that
 * previously indexed a dense rows x wordsPerRow() vector must switch
 * to rowData()/rowStride() (see README "Performance").
 */
class BitPlane
{
  public:
    BitPlane() = default;

    /** Create an all-zero plane. */
    BitPlane(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Read bit (r, c). */
    bool
    get(std::size_t r, std::size_t c) const
    {
        return (words_[wordIndex(r, c)] >> (c & 63)) & 1u;
    }

    /** Write bit (r, c). */
    void
    set(std::size_t r, std::size_t c, bool v)
    {
        std::uint64_t &w = words_[wordIndex(r, c)];
        const std::uint64_t mask = std::uint64_t{1} << (c & 63);
        if (v)
            w |= mask;
        else
            w &= ~mask;
    }

    /** Number of set bits in the whole plane. */
    std::uint64_t countOnes() const;

    /** Number of set bits in row @p r. */
    std::uint64_t countOnesInRow(std::size_t r) const;

    /** Fraction of zero bits (the paper's per-plane sparsity ratio SR). */
    double sparsity() const;

    /**
     * Column pattern of @p m consecutive rows starting at @p row0, at
     * column @p c. Bit i of the result is row (row0 + i)'s bit — i.e. the
     * "grouped index" of Fig 7(b). @p m must be <= 16.
     */
    std::uint32_t columnPattern(std::size_t row0, std::size_t m,
                                std::size_t c) const;

    /**
     * All column patterns for a row group, appended to @p out (resized to
     * cols()). Word-parallel over the packed words (patternsAt); this is
     * the hot loop of both BRCR and BSTC.
     */
    void columnPatterns(std::size_t row0, std::size_t m,
                        std::vector<std::uint32_t> &out) const;

    /** Packed 64-column words per row (cols rounded up to 64). */
    std::size_t wordsPerRow() const { return wordsPerRow_; }

    /**
     * Allocated words per row: wordsPerRow() rounded up to a whole
     * 64-byte line. Words in [wordsPerRow(), rowStride()) are zero.
     */
    std::size_t rowStride() const { return rowStride_; }

    /** First packed word of row @p r (rowStride() words, 64B-aligned). */
    const std::uint64_t *
    rowData(std::size_t r) const
    {
        return words_.data() + r * rowStride_;
    }

    /** Whole backing buffer: rows() * rowStride() words, padding zero. */
    const std::uint64_t *data() const { return words_.data(); }
    std::size_t totalWords() const { return words_.size(); }

    /**
     * Packed word @p word of row @p r: bit c of the result is column
     * (word * 64 + c). Bits at or beyond cols() are always zero. This
     * is the raw word patternsAt() reads — exposed so full-column
     * analyses (sparsity.cpp's column dedup) can walk set bits
     * word-parallel instead of calling get() per (row, column).
     */
    std::uint64_t
    rowWord(std::size_t r, std::size_t word) const
    {
        return words_[r * rowStride_ + word];
    }

    /**
     * Column patterns of one word-aligned 64-column block: columns
     * [word*64, word*64+64) of the @p m-row group starting at @p row0,
     * written to @p out (caller provides >= 64 slots; entries past
     * cols() are zeroed). Reads one packed word per group row instead
     * of one BitPlane::get() per (row, column) — 64x fewer loads — and
     * skips all-zero words outright, which dominates on the sparse
     * high-magnitude planes BRCR and BSTC actually walk.
     * @return patterns written that lie inside the plane (<= 64).
     */
    std::size_t patternsAt(std::size_t row0, std::size_t m,
                           std::size_t word, std::uint32_t *out) const;

    bool operator==(const BitPlane &other) const;

  private:
    std::size_t
    wordIndex(std::size_t r, std::size_t c) const
    {
        return r * rowStride_ + (c >> 6);
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t wordsPerRow_ = 0;
    std::size_t rowStride_ = 0;
    common::AlignedBuffer<std::uint64_t> words_;
};

} // namespace mcbp::bitslice
