#include "bitslice/sparsity.hpp"

#include <bit>
#include <unordered_map>

#include "common/bit_util.hpp"
#include "common/logging.hpp"

namespace mcbp::bitslice {

SparsityReport
analyzeSparsity(const Int8Matrix &w, quant::BitWidth bw)
{
    SparsityReport rep;
    const double total = static_cast<double>(w.size());
    std::size_t zeros = 0, nonneg = 0;
    w.forEach([&](std::size_t, std::size_t, std::int8_t v) {
        if (v == 0)
            ++zeros;
        if (v >= 0)
            ++nonneg;
    });
    rep.valueSparsity = zeros / total;
    rep.signSparsity = nonneg / total;

    SignMagnitude sm = decompose(w, bw);
    rep.planeSparsity.reserve(sm.magnitude.size());
    double acc = 0.0;
    for (const auto &plane : sm.magnitude) {
        const double s = plane.sparsity();
        rep.planeSparsity.push_back(s);
        acc += s;
    }
    rep.meanBitSparsity =
        sm.magnitude.empty() ? 1.0 : acc / static_cast<double>(
                                               sm.magnitude.size());
    return rep;
}

RepetitionReport
measureRepetition(const BitPlane &plane, std::size_t m)
{
    fatalIf(m == 0 || m > 16, "group size must be in [1, 16]");
    RepetitionReport rep;
    std::vector<bool> seen(pow2(static_cast<unsigned>(m)), false);
    for (std::size_t row0 = 0; row0 < plane.rows(); row0 += m) {
        const std::size_t last = std::min(row0 + m, plane.rows());
        std::fill(seen.begin(), seen.end(), false);
        // Word-parallel: the block's OR word names the non-zero columns,
        // so zero columns are counted by popcount instead of visited.
        for (std::size_t word = 0; word < plane.wordsPerRow(); ++word) {
            const std::size_t width =
                std::min<std::size_t>(64, plane.cols() - (word << 6));
            std::uint64_t rowWords[16];
            std::uint64_t any = 0;
            std::size_t nrows = 0;
            for (std::size_t r = row0; r < last; ++r) {
                const std::uint64_t w = plane.rowWord(r, word);
                rowWords[nrows++] = w;
                any |= w;
            }
            rep.totalColumns += width;
            rep.zeroColumns += width - popcount64(any);
            while (any != 0) {
                const int c = std::countr_zero(any);
                any &= any - 1;
                std::uint32_t p = 0;
                for (std::size_t r = 0; r < nrows; ++r)
                    p |= static_cast<std::uint32_t>(
                             (rowWords[r] >> c) & 1u)
                         << r;
                if (!seen[p]) {
                    seen[p] = true;
                    ++rep.distinctColumns;
                }
            }
        }
    }
    return rep;
}

namespace {

/** Hash key for a full-height bit column. */
struct ColumnKey
{
    std::vector<std::uint64_t> words;
    bool operator==(const ColumnKey &o) const { return words == o.words; }
};

struct ColumnKeyHash
{
    std::size_t
    operator()(const ColumnKey &k) const
    {
        std::size_t h = 0xcbf29ce484222325ull;
        for (auto w : k.words) {
            h ^= w;
            h *= 0x100000001b3ull;
        }
        return h;
    }
};

} // namespace

MergeCost
compareMergeStrategies(const BitPlane &plane, std::size_t m)
{
    MergeCost cost;
    // Dense bit-serial processes every bit; sparse skips zeros.
    cost.denseAdds =
        static_cast<std::uint64_t>(plane.rows()) * plane.cols();
    cost.naiveAdds = plane.countOnes();

    // Full-size merge: deduplicate full columns, then each distinct
    // non-zero column contributes (its popcount) row-additions, plus one
    // merge addition per duplicated occurrence.
    //
    // Keys build word-parallel, 64 columns per block: each row
    // contributes one packed BitPlane word, and only its set bits are
    // scattered into the block's transposed column keys — one word
    // load per (row, block) instead of one get() per (row, column),
    // with all-zero columns skipped outright via the block's OR word.
    {
        std::unordered_map<ColumnKey, std::size_t, ColumnKeyHash> uniq;
        std::uint64_t merge_adds = 0;
        const std::size_t tall_words = (plane.rows() + 63) / 64;
        std::vector<ColumnKey> block(64);
        for (std::size_t wi = 0; wi < plane.wordsPerRow(); ++wi) {
            for (ColumnKey &key : block)
                key.words.assign(tall_words, 0);
            std::uint64_t any = 0; // columns of the block with a bit
            for (std::size_t r = 0; r < plane.rows(); ++r) {
                std::uint64_t w = plane.rowWord(r, wi);
                any |= w;
                while (w != 0) {
                    const int c = std::countr_zero(w);
                    w &= w - 1;
                    block[c].words[r >> 6] |= std::uint64_t{1}
                                              << (r & 63);
                }
            }
            // Bits beyond cols() are zero by construction, so `any`
            // only names real, non-zero columns.
            while (any != 0) {
                const int c = std::countr_zero(any);
                any &= any - 1;
                const std::uint64_t ones = popcountSpan(
                    block[c].words.data(), block[c].words.size());
                auto [it, inserted] =
                    uniq.try_emplace(std::move(block[c]), ones);
                if (!inserted)
                    ++merge_adds; // accumulate duplicate's activation
            }
        }
        std::uint64_t recon_adds = 0;
        // mcbp-lint: allow(unordered-accumulation): uint64 sum is commutative, order cannot change the result
        for (const auto &kv : uniq)
            recon_adds += kv.second; // distinct column feeds its rows
        cost.fullMergeAdds = merge_adds + recon_adds;
        // Dense-datapath variant: every distinct column costs all rows.
        cost.fullMergeDenseAdds =
            merge_adds + uniq.size() * plane.rows();
    }

    // Group-wise merge (BRCR): per m-row group, merging costs one addition
    // per non-zero column beyond the first of its pattern; reconstruction
    // adds each present pattern's popcount once.
    {
        fatalIf(m == 0 || m > 16, "group size must be in [1, 16]");
        std::vector<std::uint32_t> count(pow2(static_cast<unsigned>(m)), 0);
        std::uint64_t adds = 0;
        for (std::size_t row0 = 0; row0 < plane.rows(); row0 += m) {
            const std::size_t last = std::min(row0 + m, plane.rows());
            std::fill(count.begin(), count.end(), 0);
            // Same word-walk as measureRepetition: only non-zero
            // columns (set bits of the block OR) are visited.
            for (std::size_t word = 0; word < plane.wordsPerRow();
                 ++word) {
                std::uint64_t rowWords[16];
                std::uint64_t any = 0;
                std::size_t nrows = 0;
                for (std::size_t r = row0; r < last; ++r) {
                    const std::uint64_t w = plane.rowWord(r, word);
                    rowWords[nrows++] = w;
                    any |= w;
                }
                while (any != 0) {
                    const int c = std::countr_zero(any);
                    any &= any - 1;
                    std::uint32_t p = 0;
                    for (std::size_t r = 0; r < nrows; ++r)
                        p |= static_cast<std::uint32_t>(
                                 (rowWords[r] >> c) & 1u)
                             << r;
                    if (count[p] > 0)
                        ++adds; // merge into existing MAV entry
                    ++count[p];
                }
            }
            for (std::size_t p = 1; p < count.size(); ++p) {
                if (count[p] > 0)
                    adds += static_cast<std::uint64_t>(
                        popcount64(p)); // reconstruction additions
            }
        }
        cost.groupMergeAdds = adds;
    }
    return cost;
}

} // namespace mcbp::bitslice
