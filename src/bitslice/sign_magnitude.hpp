/**
 * @file
 * Sign-magnitude (SM) bit-slice decomposition of integer matrices
 * (paper section 3.2: "we adopt the sign-magnitude format for all weights").
 *
 * An INT8 weight w decomposes into a sign bit s and 7 magnitude bit-planes
 * b1 (LSB) ... b7 (MSB), with
 *
 *     w = (1 - 2 s) * sum_{p=1..7} b_p * 2^(p-1).
 *
 * Plane numbering follows the paper (Fig 8c / Fig 25): plane 1 = lowest
 * magnitude bit, plane k = highest, sign stored separately ("8th BS").
 *
 * The file also provides the sign-split view used by the BRCR engine:
 * W = W+ - W- with disjoint non-negative support, each bit-sliced on its
 * own, which keeps column-pattern matching purely binary (DESIGN.md 4.1).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "bitslice/bit_plane.hpp"
#include "common/matrix.hpp"
#include "quant/quantizer.hpp"

namespace mcbp::bitslice {

/** Full SM decomposition of an integer matrix. */
struct SignMagnitude
{
    /** Magnitude planes, index 0 = plane 1 (LSB) ... back = MSB. */
    std::vector<BitPlane> magnitude;
    /** Sign plane: bit set where the value is negative. */
    BitPlane sign;
    std::size_t rows = 0;
    std::size_t cols = 0;

    /** Number of magnitude planes (7 for INT8, 3 for INT4). */
    std::size_t planeCount() const { return magnitude.size(); }
};

/**
 * Decompose @p w into sign + magnitude planes.
 * @param w integer matrix (INT4 values must already be within [-7, 7]).
 * @param bw bit width, controls the number of magnitude planes.
 */
SignMagnitude decompose(const Int8Matrix &w, quant::BitWidth bw);

/** Rebuild the integer matrix; exact inverse of decompose(). */
Int8Matrix reconstruct(const SignMagnitude &sm);

/**
 * Bit-serial reference GEMV over the SM planes:
 *     y_i = sum_p 2^(p-1) * sum_j (+-x_j) [b_p(i,j) = 1]
 * This is the "shift-and-accumulate over bit-slice matrices" equivalence of
 * section 2.3 and the golden model for the BRCR engine.
 */
std::vector<std::int32_t> bitSerialGemv(const SignMagnitude &sm,
                                        const std::vector<std::int8_t> &x);

/** Sign-split decomposition: planes of max(w, 0) and of max(-w, 0). */
struct SignSplit
{
    SignMagnitude positive; ///< Magnitude planes of w where w > 0.
    SignMagnitude negative; ///< Magnitude planes of -w where w < 0.
};

/** Split @p w by sign and bit-slice both halves. */
SignSplit decomposeSignSplit(const Int8Matrix &w, quant::BitWidth bw);

} // namespace mcbp::bitslice
