/**
 * @file
 * Value-level vs bit-level sparsity and repetition analytics
 * (paper Figs 4, 5(a)(b)(d), 8(c), 25).
 *
 * These analyses drive the motivation figures and feed the BSTC plane
 * policy (compress planes whose sparsity ratio exceeds 65%).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "bitslice/sign_magnitude.hpp"
#include "common/matrix.hpp"

namespace mcbp::bitslice {

/** Sparsity report for one matrix. */
struct SparsityReport
{
    double valueSparsity = 0.0;          ///< Fraction of exact-zero values.
    std::vector<double> planeSparsity;   ///< SR per magnitude plane (1..k).
    double meanBitSparsity = 0.0;        ///< Mean over magnitude planes.
    double signSparsity = 0.0;           ///< Fraction of non-negative values.
};

/** Analyze an integer matrix at the given bit width. */
SparsityReport analyzeSparsity(const Int8Matrix &w, quant::BitWidth bw);

/** Repetition statistics for grouped bit-slice column vectors (Fig 5a). */
struct RepetitionReport
{
    std::size_t totalColumns = 0;   ///< Columns examined (per group-plane).
    std::size_t distinctColumns = 0;///< Distinct non-zero patterns seen.
    std::size_t zeroColumns = 0;    ///< All-zero group columns.
    /** Columns whose pattern already occurred: the exploitable repetition. */
    std::size_t repeatedColumns() const
    {
        return totalColumns - distinctColumns - zeroColumns;
    }
    double repetitionRate() const
    {
        return totalColumns == 0
                   ? 0.0
                   : static_cast<double>(repeatedColumns()) /
                         static_cast<double>(totalColumns);
    }
};

/**
 * Measure column-pattern repetition for a single plane when rows are
 * processed in groups of @p m (Fig 5(a): smaller m -> fewer "holes" ->
 * more repetition). Aggregated over all row groups of the plane.
 */
RepetitionReport measureRepetition(const BitPlane &plane, std::size_t m);

/**
 * Addition counts for computing one plane-GEMV three ways (Fig 5(b)):
 * value-level sparse, full-size merge (whole plane as one group) and
 * group-wise merge with group size @p m. Used to reproduce the 5.1x mean
 * group-wise-vs-full-size gain.
 */
struct MergeCost
{
    std::uint64_t denseAdds = 0;     ///< Dense bit-serial (all bits).
    std::uint64_t naiveAdds = 0;     ///< Sparse bit-serial (set bits).
    std::uint64_t fullMergeAdds = 0; ///< Full-height merge, zero-skipping.
    /**
     * Full-height merge on a dense datapath (the paper's "vanilla
     * full-size merge"): each distinct column still streams all m rows;
     * only exact duplicates merge. With H >> 2^rows duplicates are rare,
     * so this barely beats dense — which is the Fig 5(a) point.
     */
    std::uint64_t fullMergeDenseAdds = 0;
    std::uint64_t groupMergeAdds = 0;///< Groups of m rows (BRCR).
};

MergeCost compareMergeStrategies(const BitPlane &plane, std::size_t m);

} // namespace mcbp::bitslice
