/**
 * @file
 * Serving-engine demo: a 48-request Poisson trace (Llama7B, MBPP-style
 * code-generation requests with jittered lengths) pushed through the continuous-
 * batching ServingSimulator on three platforms from the registry —
 * the A100 roofline and MCBP standard/aggressive at the paper's
 * 148-processor scale — plus a batching ablation on MCBP.
 *
 * Prints per-request latency percentiles, aggregate tokens/s and
 * J/token, the knobs a serving deployment actually cares about
 * (Fig 20-style throughput/efficiency, but under load).
 */
#include <iostream>

#include "common/table.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"

using namespace mcbp;

int
main()
{
    // --- The trace: 48 generation requests arriving at 8 req/s ----------
    model::TraceConfig tc;
    tc.model = "Llama7B";
    tc.task = "MBPP"; // code generation: decode-heavy, batching-friendly
    tc.requests = 48;
    tc.arrivalsPerSecond = 8.0;
    tc.lengthJitter = 0.5;
    tc.seed = 7;
    const std::vector<model::Request> trace = model::synthesizeTrace(tc);
    std::cout << "Trace: " << trace.size() << " requests, Poisson "
              << tc.arrivalsPerSecond << " req/s, " << tc.model << "/"
              << tc.task
              << ", lengths jittered +/-" << tc.lengthJitter * 100.0
              << "%\n";

    // --- The fleet ------------------------------------------------------
    engine::Registry registry;
    const std::vector<std::string> specs = {
        "a100", "mcbp:procs=148", "mcbp-aggressive:procs=148"};
    auto fleet = registry.fleet(specs);

    Table t({"Accelerator", "p50 [s]", "p90 [s]", "p99 [s]", "mean [s]",
             "tok/s", "mJ/token", "mean batch", "batching gain"});
    for (const auto &accel : fleet) {
        engine::ServingSimulator sim(*accel, {/*maxBatch=*/32});
        const engine::ServingReport r = sim.simulate(trace);
        t.addRow({r.accelerator, fmt(r.p50LatencySeconds, 3),
                  fmt(r.p90LatencySeconds, 3), fmt(r.p99LatencySeconds, 3),
                  fmt(r.meanLatencySeconds, 3),
                  fmt(r.tokensPerSecond, 0),
                  fmt(r.joulesPerToken * 1e3, 2),
                  fmt(r.meanBatchOccupancy, 1),
                  fmtX(r.batchingSpeedup())});
    }
    std::cout << "\nServing the trace (continuous batching, maxBatch "
                 "32):\n";
    t.print(std::cout);

    // --- Batching ablation on MCBP --------------------------------------
    auto mcbp = registry.make("mcbp:procs=148");
    Table t2({"maxBatch", "p99 [s]", "tok/s", "engine busy [s]",
              "batching gain"});
    for (std::size_t b : {1u, 4u, 16u, 32u}) {
        engine::ServingSimulator sim(*mcbp, {b});
        const engine::ServingReport r = sim.simulate(trace);
        t2.addRow({fmt(static_cast<double>(b), 0),
                   fmt(r.p99LatencySeconds, 3), fmt(r.tokensPerSecond, 0),
                   fmt(r.busySeconds, 3), fmtX(r.batchingSpeedup())});
    }
    std::cout << "\nContinuous-batch size ablation (MCBP, 148 "
                 "processors):\n";
    t2.print(std::cout);
    std::cout << "\nBatching amortizes the decode weight stream across "
                 "in-flight requests; the gain saturates once the "
                 "per-request KV/compute work dominates the iteration.\n";
    return 0;
}
