/**
 * @file
 * Serving-engine demo: a 48-request Poisson trace (Llama7B, MBPP-style
 * code-generation requests with jittered lengths) pushed through the
 * continuous-batching ServingSimulator on three platforms from the
 * registry — the A100 roofline and MCBP standard/aggressive at the
 * paper's 148-processor scale — plus a batching ablation, a
 * tensor-parallel cluster sweep, a pipeline-parallel sweep (pp= x mb=
 * micro-batching, including a pp x tp composition), a dp= replica
 * fleet sweep (the same chips split into independent serving
 * replicas behind the fleet router), and a KV-capacity study on MCBP:
 * scheduler policies, then reservation-vs-paged KV admission
 * (preempt-and-recompute) under the same stress bound.
 *
 * Prints per-request latency percentiles, aggregate tokens/s and
 * J/token, the knobs a serving deployment actually cares about
 * (Fig 20-style throughput/efficiency, but under load). Pass
 * `--json <path>` to archive every row machine-readably (one shared
 * schema, bench_util.hpp).
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "engine/health.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "sim/fault_model.hpp"

using namespace mcbp;

namespace {

/** One serving run -> console row + JSON record. */
void
report(const engine::ServingReport &r, const std::string &setting,
       Table &t, bench::JsonRecords &json)
{
    t.addRow({r.accelerator, setting, fmt(r.p50LatencySeconds, 3),
              fmt(r.p99LatencySeconds, 3), fmt(r.p99QueueSeconds, 3),
              fmt(r.p50FirstTokenSeconds, 3),
              fmt(r.meanTpotSeconds * 1e3, 1),
              fmt(r.tokensPerSecond, 0),
              fmt(r.joulesPerToken * 1e3, 2),
              fmt(r.meanBatchOccupancy, 1),
              fmt(r.kvPeakBytes / 1e9, 2),
              std::to_string(r.preemptions),
              fmtX(r.batchingSpeedup())});
    bench::appendServingFields(json.begin().field("setting", setting),
                               r);
}

} // namespace

int
main(int argc, char **argv)
{
    // --env: print the documented MCBP_* knob table (common/env.hpp,
    // the registry every environment read routes through) and exit.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--env") {
            std::cout << "MCBP_* environment knobs (common/env.hpp):\n"
                      << env::describeKnobs();
            return 0;
        }
    }

    // Reject a bad --json path before simulating anything.
    (void)bench::validatedJsonPathFromArgs(argc, argv);
    bench::JsonRecords json("serving");

    // --- The trace: 48 generation requests arriving at 8 req/s ----------
    model::TraceConfig tc;
    tc.model = "Llama7B";
    tc.task = "MBPP"; // code generation: decode-heavy, batching-friendly
    tc.requests = 48;
    tc.arrivalsPerSecond = 8.0;
    tc.lengthJitter = 0.5;
    tc.seed = 7;
    const std::vector<model::Request> trace = model::synthesizeTrace(tc);
    std::cout << "Trace: " << trace.size() << " requests, Poisson "
              << tc.arrivalsPerSecond << " req/s, " << tc.model << "/"
              << tc.task
              << ", lengths jittered +/-" << tc.lengthJitter * 100.0
              << "%\n";

    engine::Registry registry;
    Table t({"Accelerator", "Setting", "p50 [s]", "p99 [s]",
             "p99 queue [s]", "p50 TTFT [s]", "TPOT [ms]", "tok/s",
             "mJ/token", "mean batch", "KV peak [GB]", "preempt",
             "batching gain"});

    // --- The fleet ------------------------------------------------------
    for (const std::string spec :
         {"a100", "mcbp:procs=148", "mcbp-aggressive:procs=148"}) {
        auto accel = registry.make(spec);
        engine::ServingSimulator sim(*accel, {/*maxBatch=*/32});
        report(sim.simulate(trace), "maxBatch=32", t, json);
    }

    // --- Batching ablation on MCBP --------------------------------------
    auto mcbp = registry.make("mcbp:procs=148");
    for (std::size_t b : {1u, 4u, 16u}) {
        engine::ServingSimulator sim(*mcbp, {b});
        report(sim.simulate(trace),
               "maxBatch=" + std::to_string(b), t, json);
    }

    // --- Tensor-parallel cluster sweep ----------------------------------
    // tp=N shards the model across N chips: the decode weight stream
    // and linear work split 1/N, attention partitions by heads, and
    // every layer pays two activation all-reduces on the ring fabric.
    for (std::size_t tp : {1u, 2u, 4u, 8u}) {
        auto cluster = registry.make("mcbp:procs=148,tp=" +
                                     std::to_string(tp));
        engine::ServingSimulator sim(*cluster, {32});
        report(sim.simulate(trace), "tp=" + std::to_string(tp), t,
               json);
    }

    // --- Pipeline-parallel sweep ----------------------------------------
    // pp=N splits the decoder layers across N stages: prefill flows
    // through the stages in mb= micro-batches (fill/drain bubbles
    // shrink as mb grows), decode streams each stage's weights from
    // its own HBM (the shared stream divides by N) while the serving
    // engine overlaps distinct requests' traversals across stages.
    // pp composes with tp: each stage can itself be a tensor-parallel
    // cluster.
    for (const char *spec :
         {"mcbp:procs=148,pp=2,mb=8", "mcbp:procs=148,pp=4,mb=1",
          "mcbp:procs=148,pp=4,mb=8", "mcbp:procs=148,pp=2,tp=2,mb=8"}) {
        auto pipe = registry.make(spec);
        engine::ServingSimulator sim(*pipe, {32});
        const std::string setting =
            std::string(spec).substr(std::string(spec).find(',') + 1);
        report(sim.simulate(trace), setting, t, json);
    }
    {
        auto stack = registry.make("mcbp:procs=148,pp=2,tp=2,mb=8");
        const engine::Capabilities c = stack->capabilities();
        std::cout << "\npp=2,tp=2 topology: " << c.processors
                  << " processors, " << c.pipelineStages
                  << " pipeline stages, " << c.kvShards
                  << " KV shards (per-shard HBM "
                  << c.hbmCapacityBytes / 1e9 /
                         static_cast<double>(c.kvShards)
                  << " GB)\n";
    }

    // --- Memory-bounded serving: KV capacity + scheduler policy ---------
    // The documented budget derivation — aggregate advertised HBM
    // minus the resident weights — leaves ~2.4 TB of headroom on the
    // 148-processor gang, which this 48-request trace never stresses.
    // So print that headroom, then apply a deliberately tight 2 GB
    // stress bound instead, making admission the bottleneck so the
    // policy choice shows (skip-ahead / shortest-prompt admit around
    // a blocked head).
    const engine::Capabilities caps = mcbp->capabilities();
    const double kv_headroom =
        caps.hbmCapacityBytes -
        static_cast<double>(model::findModel(tc.model).weightBytes());
    const double kv_budget = 2e9;
    std::cout << "\nAggregate KV headroom (HBM - weights): "
              << kv_headroom / 1e9 << " GB; stress bound applied: "
              << kv_budget / 1e9 << " GB\n";
    for (engine::SchedulerPolicy policy :
         engine::allSchedulerPolicies()) {
        engine::ServingOptions opts;
        opts.maxBatch = 32;
        opts.policy = policy;
        opts.kvCapacityBytes = kv_budget;
        engine::ServingSimulator sim(*mcbp, opts);
        report(sim.simulate(trace),
               "kv-bounded," + engine::toString(policy), t, json);
    }

    // --- KV admission policy: reservation vs block paging ----------------
    // Same stress bound, both KV policies: `reserve` holds each
    // request's full (prompt + decode) footprint from admission, so
    // the queue absorbs the pressure; `paged` allocates 16-token
    // blocks as requests actually grow and preempts the youngest
    // running request for recompute when growth overflows — more of
    // the trace gets in sooner, paid for in recompute prefills.
    for (engine::KvPolicy kv_policy : engine::allKvPolicies()) {
        engine::ServingOptions opts;
        opts.maxBatch = 32;
        opts.kvCapacityBytes = kv_budget;
        opts.kvPolicy = kv_policy;
        engine::ServingSimulator sim(*mcbp, opts);
        report(sim.simulate(trace),
               "kv=" + engine::toString(kv_policy), t, json);
    }

    // A tp=4 shard holds 1/4 of every token's KV, so its share of the
    // budget is 1/4 too — the aggregate ledger is exact by symmetry.
    {
        auto tp4 = registry.make("mcbp:procs=148,tp=4");
        const engine::Capabilities c4 = tp4->capabilities();
        std::cout << "tp=4 KV sharding: " << c4.kvShards
                  << " shards, per-shard HBM "
                  << c4.hbmCapacityBytes / 1e9 /
                         static_cast<double>(c4.kvShards)
                  << " GB\n";
        engine::ServingOptions opts;
        opts.maxBatch = 32;
        opts.kvCapacityBytes = kv_budget;
        opts.kvPolicy = engine::KvPolicy::Paged;
        engine::ServingSimulator sim(*tp4, opts);
        report(sim.simulate(trace), "kv=paged,tp=4", t, json);
    }

    // --- Replica fleets: the dp= axis ------------------------------------
    // dp=N replicates the whole serving group N ways behind the fleet
    // router: each request runs on exactly one replica (capacity
    // multiplies, per-request speed does not), the router picks the
    // replica by outstanding KV pressure (route=least, the default)
    // or round-robin, and a dead replica drains onto the survivors
    // through the retry path. Same 8 chips either way: tp=8 is one
    // fast engine, dp=4,tp=2 is four slower ones that drain a burst
    // in parallel.
    for (const char *spec :
         {"mcbp:procs=148,tp=8", "mcbp:procs=148,dp=2,tp=4",
          "mcbp:procs=148,dp=4,tp=2",
          "mcbp:procs=148,dp=4,tp=2,route=rr"}) {
        auto fleet = registry.make(spec);
        engine::ServingSimulator sim(*fleet, {8});
        const std::string setting =
            std::string(spec).substr(std::string(spec).find(',') + 1) +
            ",maxBatch=8";
        report(sim.simulate(trace), setting, t, json);
    }
    {
        auto fleet = registry.make("mcbp:procs=148,dp=4,tp=2");
        const engine::Capabilities c = fleet->capabilities();
        std::cout << "\ndp=4,tp=2 fleet: " << c.replicas
                  << " replicas, " << c.processors << " processors, "
                  << c.kvShards << " KV shards (fleet HBM "
                  << c.hbmCapacityBytes / 1e9 << " GB)\n";
    }

    // --- Fault injection: retries, failover, SLOs ------------------------
    // A tp=2 group under transient chip failures: each failure kills
    // the in-flight batch (lost tokens recompute on retry with capped
    // exponential backoff) and the group re-forms at tp=1 — the
    // degraded topology from engine/health.hpp — until the repair
    // lands. Requests carry a completion deadline; work still queued
    // past it is dropped, and goodput counts only SLO-compliant
    // tokens.
    {
        const std::string spec = "mcbp:procs=148,tp=2";
        auto group = registry.make(spec);
        auto degraded = registry.make(engine::degradedSpec(spec));
        engine::ServingOptions opts;
        opts.maxBatch = 32;
        opts.faults.seed = tc.seed; // stream-separated from the trace
        opts.faults.mtbfSeconds = 1.5;
        opts.faults.repairSeconds = 0.3;
        opts.faults.permanentFraction = 0.0;
        opts.faults.horizonSeconds = 30.0;
        opts.degradedAccel = degraded.get();
        opts.retry.maxRetries = 5;
        opts.retry.backoffBaseSeconds = 0.02;
        opts.retry.backoffCapSeconds = 0.5;
        opts.retry.deadlineSeconds = 20.0;
        engine::ServingSimulator sim(*group, opts);
        const engine::ServingReport r = sim.simulate(trace);
        report(r, "tp=2,faults,mtbf=1.5s", t, json);
        std::cout << "\nFault injection (tp=2, MTBF 1.5 s, repair 0.3 "
                     "s, deadline 20 s):\n  "
                  << r.faultEvents << " fault events, "
                  << r.killedInFlight << " in-flight kills, "
                  << r.retriesScheduled << " retries, "
                  << r.droppedRequests << " drops, "
                  << r.faultLostTokens << " lost tokens ("
                  << fmt(r.faultRecomputeSeconds, 3)
                  << " s recomputing)\n  degraded "
                  << fmt(r.degradedSeconds, 3) << " s ("
                  << fmtPct(r.degradedFraction) << " of the run), outage "
                  << fmt(r.outageSeconds, 3) << " s\n  goodput "
                  << fmt(r.goodputTokensPerSecond, 0)
                  << " tok/s under the SLO, attainment "
                  << fmtPct(r.sloAttainment) << "\n";
        for (const engine::ServingReport::FaultImpact &f : r.faultLog)
            std::cout << "  [fault " << f.eventId << "] t="
                      << fmt(f.seconds, 3) << "s " << f.kind
                      << " chip=" << f.chip
                      << (f.permanent ? " (permanent)" : "")
                      << ": killed " << f.killed << ", dropped "
                      << f.dropped << "\n";
    }

    std::cout << "\nServing the trace (continuous batching):\n";
    t.print(std::cout);
    std::cout
        << "\nBatching amortizes the decode weight stream across "
           "in-flight requests; the gain saturates once the "
           "per-request KV/compute work dominates the iteration.\n"
           "tp=N keeps cutting decode latency until the all-reduce "
           "floor shows; a bounded KV budget turns admission into "
           "the bottleneck, where the scheduler policy sets the "
           "queue-time tail and the paged KV policy trades recompute "
           "prefills for earlier admission.\n";

    json.writeIfRequested(argc, argv);
    return 0;
}
