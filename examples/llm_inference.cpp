/**
 * @file
 * End-to-end inference example: simulate Llama7B on the Dolly
 * long-context task through the full MCBP accelerator model, print the
 * per-stage latency/energy/traffic picture, and compare against the
 * ablation baseline and the A100 roofline.
 *
 * Usage: llm_inference [model] [task]
 *   model: Llama7B (default), Llama13B, OPT1B3, Bloom1B7, Qwen7B
 *   task : Dolly (default), Cola, MNLI, SST2, Wikitext2, Wikilingua,
 *          Winogrande, MMLU, MBPP
 */
#include <iostream>
#include <string>

#include "accel/gpu_model.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "common/table.hpp"

using namespace mcbp;

namespace {

void
printPhase(const char *name, const accel::PhaseMetrics &ph)
{
    Table t({"Metric", "Value"});
    t.addRow({"Cycles", fmt(ph.cycles, 0)});
    t.addRow({"GEMM cycles", fmt(ph.gemmCycles, 0)});
    t.addRow({"Weight-load cycles", fmt(ph.weightLoadCycles, 0)});
    t.addRow({"KV/attention cycles", fmt(ph.kvLoadCycles, 0)});
    t.addRow({"Weight traffic [MB]",
              fmt(ph.traffic.weightBytes / 1e6, 1)});
    t.addRow({"Prediction traffic [MB]",
              fmt(ph.traffic.predictionBytes / 1e6, 1)});
    t.addRow({"KV traffic [MB]", fmt(ph.traffic.kvBytes / 1e6, 1)});
    t.addRow({"Energy [mJ]", fmt(ph.energy.totalPj() * 1e-9, 2)});
    std::cout << "\n-- " << name << " --\n";
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "Llama7B";
    const std::string task_name = argc > 2 ? argv[2] : "Dolly";

    const model::LlmConfig &m = model::findModel(model_name);
    const model::Workload &task = model::findTask(task_name);

    std::cout << "Simulating " << m.name << " ("
              << m.totalParams() / 1000000 << "M params, H=" << m.hidden
              << ", L=" << m.layers << ") on " << task.name
              << " (prompt " << task.promptLen << ", decode "
              << task.decodeLen << ", batch " << task.batch << ")\n";

    accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
    accel::RunMetrics r = mcbp.run(m, task);
    printPhase("Prefill", r.prefill);
    printPhase("Decode", r.decode);

    std::cout << "\nTotals: " << fmt(r.seconds() * 1e3, 1) << " ms, "
              << fmt(r.joules(), 3) << " J, " << fmt(r.watts(), 2)
              << " W, " << fmt(r.gops(), 0) << " GOPS effective, "
              << fmt(r.gopsPerWatt(), 0) << " GOPS/W\n";

    // Context: the ablation baseline and the GPU.
    accel::McbpAccelerator base = accel::makeMcbpBaseline();
    accel::RunMetrics rb = base.run(m, task);
    accel::GpuA100Model gpu;
    accel::RunMetrics rg = gpu.run(m, task);
    accel::McbpAccelerator mcbp148 = accel::makeMcbpStandard(148);
    accel::RunMetrics r148 = mcbp148.run(m, task);

    std::cout << "\nvs ablation baseline (same chip): "
              << fmtX(accel::speedupVs(r, rb)) << " faster, "
              << fmtX(accel::energySavingVs(r, rb)) << " less energy\n";
    std::cout << "vs A100 (148 MCBP processors, paper setup): "
              << fmtX(accel::speedupVs(r148, rg)) << " faster, "
              << fmtX(r148.gopsPerWatt() / rg.gopsPerWatt())
              << " more efficient\n";
    return 0;
}
