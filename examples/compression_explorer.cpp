/**
 * @file
 * Compression explorer: apply BSTC to weights of every zoo model under
 * INT8 and INT4 quantization, show the per-plane decisions the adaptive
 * policy makes, and verify lossless round-trips — the workflow for
 * deciding whether a new model benefits from BSTC.
 */
#include <iostream>

#include "bitslice/sparsity.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/llm_config.hpp"
#include "model/synthetic.hpp"

using namespace mcbp;

int
main()
{
    Table t({"Model", "Quant", "Value SR", "Mean bit SR",
             "Planes coded", "CR", "Lossless"});
    for (const auto &m : model::modelZoo()) {
        for (quant::BitWidth bw :
             {quant::BitWidth::Int8, quant::BitWidth::Int4}) {
            Rng rng(m.hidden + (bw == quant::BitWidth::Int4 ? 1 : 0));
            model::WeightProfile profile;
            profile.dynamicRange = m.dynamicRange;
            quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
                rng, 48, std::min<std::size_t>(m.hidden, 2048), bw,
                profile);
            bitslice::SparsityReport rep =
                bitslice::analyzeSparsity(qw.values, bw);
            bstc::PlanePolicy policy = bstc::adaptivePolicy(rep);
            bstc::CompressedWeight cw(qw.values, bw, 4, policy, 512);
            const bool lossless = cw.decompressToMatrix() == qw.values;

            std::string coded;
            for (std::size_t p = 0; p < policy.compress.size(); ++p)
                if (policy.compress[p])
                    coded += std::to_string(p + 1);
            t.addRow({m.name,
                      bw == quant::BitWidth::Int8 ? "INT8" : "INT4",
                      fmtPct(rep.valueSparsity),
                      fmtPct(rep.meanBitSparsity),
                      coded.empty() ? "-" : coded,
                      fmtX(cw.compressionRatio()),
                      lossless ? "yes" : "NO"});
        }
    }
    t.print(std::cout);
    std::cout << "\n'Planes coded' lists the magnitude bit-planes whose "
                 "sparsity clears the two-state-coding break-even; all "
                 "round-trips are bit-exact.\n";
    return 0;
}
