/**
 * @file
 * Design-space exploration example: how the BRCR/BSTC group size m and
 * the BGPP alpha_r shape the compute, compression and prediction
 * trade-offs on real (synthetic-LLM) data — the knobs a user tuning MCBP
 * for a new model would sweep.
 */
#include <iostream>

#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "brcr/brcr_engine.hpp"
#include "brcr/cost_model.hpp"
#include "bstc/codec.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/llm_config.hpp"
#include "model/synthetic.hpp"

using namespace mcbp;

int
main()
{
    const model::LlmConfig &m = model::findModel("Llama7B");
    Rng rng(99);
    model::WeightProfile profile;
    profile.dynamicRange = m.dynamicRange;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 2048, quant::BitWidth::Int8, profile);
    std::vector<std::int8_t> x(2048);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

    std::cout << "== Group-size sweep (measured on Llama7B-profile "
                 "weights) ==\n";
    Table t({"m", "BRCR adds/MAC", "CAM keys/group", "BSTC CR",
             "Analytic adds/MAC"});
    for (std::size_t gs = 1; gs <= 8; ++gs) {
        brcr::BrcrEngine engine({gs, quant::BitWidth::Int8});
        brcr::BrcrGemvResult res = engine.gemv(qw.values, x);
        const double macs = 64.0 * 2048.0;
        bstc::CompressedWeight cw(qw.values, quant::BitWidth::Int8, gs,
                                  bstc::paperDefaultPolicy(7), 512);
        brcr::CostModelParams cmp;
        cmp.hidden = 2048;
        cmp.groupSize = gs;
        cmp.bitSparsity = 0.72;
        t.addRow({std::to_string(gs),
                  fmt(static_cast<double>(res.ops.totalAdds()) / macs),
                  std::to_string((1u << gs) - 1),
                  fmtX(cw.compressionRatio()),
                  fmt(brcr::brcrAdds(cmp) / (2048.0 * 2048.0))});
    }
    t.print(std::cout);

    std::cout << "\n== alpha_r sweep (BGPP selectivity vs recall) ==\n";
    Table a({"alpha", "Keys kept", "Recall", "Pred bits/elem"});
    model::AttentionSet set = model::synthesizeAttention(rng, 1024, 128,
                                                         0.12);
    for (double alpha : {0.9, 0.7, 0.5, 0.3}) {
        bgpp::BgppConfig cfg;
        cfg.alpha = alpha;
        cfg.logitScale = set.logitScale;
        bgpp::BgppPredictor pred(cfg);
        bgpp::BgppResult r = pred.predict(set.query, set.keys);
        bgpp::TopkResult truth = bgpp::exactTopk(
            set.query, set.keys,
            std::max<std::size_t>(1, r.selected.size()));
        a.addRow({fmt(alpha, 1), std::to_string(r.selected.size()),
                  fmtPct(bgpp::recall(r.selected, truth.selected)),
                  fmt(static_cast<double>(r.bitsFetched) /
                      (1024.0 * 128.0))});
    }
    a.print(std::cout);
    std::cout << "\nTakeaway: m=4 balances merge gains against CAM search "
                 "growth and maximizes BSTC CR; alpha in [0.5, 0.6] keeps "
                 "recall high while pruning most keys.\n";
    return 0;
}
