/**
 * @file
 * Quickstart: the MCBP public API in one file.
 *
 * 1. Quantize a small Gaussian weight matrix to INT8 (per-channel).
 * 2. Decompose it into sign-magnitude bit-slices and inspect sparsity.
 * 3. Run the BRCR engine and verify it matches the reference integer
 *    GEMV while spending far fewer additions.
 * 4. Compress the weights with BSTC and round-trip them losslessly.
 * 5. Predict vital attention keys with BGPP and compare its K-cache
 *    traffic against value-level top-k.
 */
#include <iostream>

#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "bitslice/sparsity.hpp"
#include "brcr/brcr_engine.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/synthetic.hpp"
#include "quant/gemm.hpp"

int
main()
{
    using namespace mcbp;

    Rng rng(42);

    // --- 1. Quantize a weight matrix -----------------------------------
    model::WeightProfile profile;
    profile.dynamicRange = 16.0;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 128, 1024, quant::BitWidth::Int8, profile);
    std::cout << "Quantized a 128x1024 weight matrix to INT8 "
                 "(per-channel symmetric).\n";

    // --- 2. Bit-slice sparsity ------------------------------------------
    bitslice::SparsityReport sr =
        bitslice::analyzeSparsity(qw.values, quant::BitWidth::Int8);
    std::cout << "value sparsity " << fmtPct(sr.valueSparsity)
              << ", mean bit sparsity " << fmtPct(sr.meanBitSparsity)
              << " (" << fmt(sr.meanBitSparsity /
                             std::max(1e-9, sr.valueSparsity), 1)
              << "x higher)\n";

    // --- 3. BRCR GEMV ----------------------------------------------------
    std::vector<std::int8_t> x(1024);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

    brcr::BrcrEngine engine;
    brcr::BrcrGemvResult res = engine.gemv(qw.values, x);
    std::vector<std::int32_t> ref = quant::gemvInt(qw.values, x);
    const bool exact = res.y == ref;
    const double dense_adds = 7.0 * 128.0 * 1024.0;
    std::cout << "BRCR GEMV exact: " << (exact ? "yes" : "NO") << ", "
              << res.ops.totalAdds() << " adds vs "
              << static_cast<std::uint64_t>(dense_adds)
              << " bit-serial adds ("
              << fmtX(dense_adds /
                      static_cast<double>(res.ops.totalAdds()))
              << " reduction)\n";

    // --- 4. BSTC compression ---------------------------------------------
    bstc::PlanePolicy policy = bstc::paperDefaultPolicy(7);
    bstc::CompressedWeight cw(qw.values, quant::BitWidth::Int8, 4, policy);
    const bool lossless = cw.decompressToMatrix() == qw.values;
    std::cout << "BSTC compression ratio "
              << fmtX(cw.compressionRatio()) << ", lossless round-trip: "
              << (lossless ? "yes" : "NO") << "\n";

    // --- 5. BGPP attention prediction -------------------------------------
    model::AttentionSet attn =
        model::synthesizeAttention(rng, 512, 64, 0.12);
    bgpp::BgppConfig cfg;
    cfg.logitScale = attn.logitScale;
    bgpp::BgppPredictor predictor(cfg);
    bgpp::BgppResult bres = predictor.predict(attn.query, attn.keys);

    bgpp::TopkResult vres = bgpp::valueTopk(
        attn.query, attn.keys, bres.selected.size());
    bgpp::TopkResult truth = bgpp::exactTopk(
        attn.query, attn.keys, bres.selected.size());

    std::cout << "BGPP kept " << bres.selected.size()
              << "/512 keys, recall "
              << fmtPct(bgpp::recall(bres.selected, truth.selected))
              << ", K-bits fetched " << bres.bitsFetched << " vs "
              << vres.bitsFetched << " for value top-k ("
              << fmtX(static_cast<double>(vres.bitsFetched) /
                      static_cast<double>(bres.bitsFetched))
              << " traffic saving)\n";
    return exact && lossless ? 0 : 1;
}
