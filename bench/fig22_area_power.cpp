/**
 * @file
 * Fig 22: area and power breakdown of the MCBP accelerator at TSMC 28 nm
 * / 1 GHz.
 *
 * Area comes from the calibrated area model (9.52 mm^2 total). Power is
 * *measured* from a representative workload run: the per-unit energies
 * divided by runtime, plus the DRAM and memory-interface shares.
 */
#include <iostream>

#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/area_model.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Fig 22(a): area breakdown (TSMC 28 nm)");
    sim::AreaBreakdown area = sim::computeArea(sim::defaultConfig());
    {
        Table t({"Unit", "Area [mm^2]", "Share"});
        const double total = area.total();
        auto row = [&](const char *name, double v) {
            t.addRow({name, fmt(v, 3), fmtPct(v / total)});
        };
        row("BRCR unit (incl. CAM)", area.brcrUnit);
        row("  of which CAM", area.camOnly);
        row("BSTC unit", area.bstcUnit);
        row("BGPP unit", area.bgppUnit);
        row("SRAM", area.sram);
        row("Scheduler", area.scheduler);
        row("APU", area.apu);
        t.addRow({"Total", fmt(total, 2), "100%"});
        t.print(std::cout);
        std::cout << "Paper reference: 9.52 mm^2; BRCR 38.2%, SRAM 19.1%, "
                     "APU 18.4%, scheduler 13.4%, BSTC 6.2%, BGPP 4.5%.\n";
    }

    bench::banner("Fig 22(b): power breakdown (Llama7B Wikilingua)");
    {
        accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
        accel::RunMetrics r = mcbp.run(model::findModel("Llama7B"),
                                       model::findTask("Wikilingua"));
        sim::EnergyBreakdown e = r.prefill.energy;
        e.merge(r.decode.energy);
        const double seconds = r.seconds();
        // Memory interface (PHY) power modeled as a fixed fraction of
        // the DRAM transfer power, per the paper's methodology [44].
        const double dram_w = e.dramPj * 1e-12 / seconds;
        const double phy_w = dram_w * 0.30;
        const double core_w = e.onChipPj() * 1e-12 / seconds;
        const double total_w = dram_w + phy_w + core_w;

        Table t({"Component", "Power [W]", "Share"});
        t.addRow({"DRAM", fmt(dram_w, 3), fmtPct(dram_w / total_w)});
        t.addRow({"Memory interface", fmt(phy_w, 3),
                  fmtPct(phy_w / total_w)});
        t.addRow({"Core", fmt(core_w, 3), fmtPct(core_w / total_w)});
        t.addRow({"Total", fmt(total_w, 3), "100%"});
        t.print(std::cout);

        // Core-part split.
        Table c({"Core unit", "Share of core"});
        const double core_pj = e.onChipPj();
        c.addRow({"BRCR (compute+CAM)",
                  fmtPct((e.computePj + e.camPj) / core_pj)});
        c.addRow({"BSTC codec", fmtPct(e.codecPj / core_pj)});
        c.addRow({"BGPP unit", fmtPct(e.bgppPj / core_pj)});
        c.addRow({"SRAM", fmtPct(e.sramPj / core_pj)});
        c.addRow({"SFU/APU", fmtPct(e.sfuPj / core_pj)});
        c.print(std::cout);
        std::cout << "Paper reference: 2.395 W total; DRAM 47.6%, memory "
                     "interface 15.1%, core 37.3% (BRCR 44.7% of core).\n";
    }
    return 0;
}
