/**
 * @file
 * Pre-rewrite reference implementations of the profiling-path kernels,
 * kept verbatim as the "before" side of the before/after timings in
 * bench_micro_kernels and bench_profiling_speed. One copy here so both
 * benches measure against the same baseline. Do not "improve" these:
 * their whole value is being the original code.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bitslice/bit_plane.hpp"
#include "brcr/enumeration.hpp"

namespace mcbp::bench {

/** The pre-direct-index factorizeGroup: fresh unordered_map per group. */
inline brcr::GroupFactorization
factorizeGroupHashed(const bitslice::BitPlane &plane, std::size_t row0,
                     std::size_t m)
{
    brcr::GroupFactorization fact;
    fact.m = m;
    fact.columnIndex.assign(plane.cols(), -1);
    std::vector<std::uint32_t> raw;
    plane.columnPatterns(row0, m, raw);
    std::unordered_map<std::uint32_t, std::int32_t> index_of;
    for (std::size_t c = 0; c < raw.size(); ++c) {
        const std::uint32_t p = raw[c];
        if (p == 0)
            continue;
        auto [it, inserted] = index_of.try_emplace(
            p, static_cast<std::int32_t>(fact.patterns.size()));
        if (inserted)
            fact.patterns.push_back(p);
        fact.columnIndex[c] = it->second;
    }
    return fact;
}

/**
 * Full-column merge adds via per-bit get(): the pre-word-parallel
 * dedup inside compareMergeStrategies, reduced to the fullMergeAdds
 * quantity it computed.
 */
inline std::uint64_t
fullMergeAddsScalar(const bitslice::BitPlane &plane)
{
    struct Key
    {
        std::vector<std::uint64_t> words;
        bool operator==(const Key &o) const { return words == o.words; }
    };
    struct Hash
    {
        std::size_t
        operator()(const Key &k) const
        {
            std::size_t h = 0xcbf29ce484222325ull;
            for (auto w : k.words) {
                h ^= w;
                h *= 0x100000001b3ull;
            }
            return h;
        }
    };
    std::unordered_map<Key, std::size_t, Hash> uniq;
    std::uint64_t merge_adds = 0;
    const std::size_t words = (plane.rows() + 63) / 64;
    for (std::size_t c = 0; c < plane.cols(); ++c) {
        Key key;
        key.words.assign(words, 0);
        std::uint64_t ones = 0;
        for (std::size_t r = 0; r < plane.rows(); ++r) {
            if (plane.get(r, c)) {
                key.words[r >> 6] |= std::uint64_t{1} << (r & 63);
                ++ones;
            }
        }
        if (ones == 0)
            continue;
        auto [it, inserted] = uniq.try_emplace(std::move(key), ones);
        if (!inserted)
            ++merge_adds;
    }
    std::uint64_t recon_adds = 0;
    // mcbp-lint: allow(unordered-accumulation): uint64 sum is commutative, order cannot change the result
    for (const auto &kv : uniq)
        recon_adds += kv.second;
    return merge_adds + recon_adds;
}

} // namespace mcbp::bench
