/**
 * @file
 * Google-benchmark microbenchmarks for the hot kernels: bit-slicing,
 * BRCR GEMV (vs the reference integer GEMV), BSTC encode/decode, CAM
 * matching and one BGPP prediction round. These measure the *host*
 * implementation, complementing the cycle model (which measures the
 * modeled hardware).
 */
#include <benchmark/benchmark.h>

#include "bgpp/bgpp_predictor.hpp"
#include "bitslice/sign_magnitude.hpp"
#include "bitslice/sparsity.hpp"
#include "brcr/brcr_engine.hpp"
#include "brcr/cam.hpp"
#include "brcr/enumeration.hpp"
#include "bstc/codec.hpp"
#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/simd/simd.hpp"
#include "model/synthetic.hpp"
#include "quant/gemm.hpp"
#include "reference_kernels.hpp"

using namespace mcbp;

namespace {

quant::QuantizedWeight
makeWeights(std::size_t rows, std::size_t cols)
{
    Rng rng(1234);
    model::WeightProfile profile;
    return model::synthesizeQuantizedWeight(rng, rows, cols,
                                            quant::BitWidth::Int8, profile);
}

std::vector<std::int8_t>
makeVec(std::size_t n)
{
    Rng rng(4321);
    std::vector<std::int8_t> x(n);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
    return x;
}

void
BM_BitSliceDecompose(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 1024);
    for (auto _ : state) {
        auto sm = bitslice::decompose(qw.values, quant::BitWidth::Int8);
        benchmark::DoNotOptimize(sm.magnitude.data());
    }
    state.SetItemsProcessed(state.iterations() * 64 * 1024);
}
BENCHMARK(BM_BitSliceDecompose);

void
BM_ReferenceGemv(benchmark::State &state)
{
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    quant::QuantizedWeight qw = makeWeights(rows, 1024);
    auto x = makeVec(1024);
    for (auto _ : state) {
        auto y = quant::gemvInt(qw.values, x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * 1024);
}
BENCHMARK(BM_ReferenceGemv)->Arg(64)->Arg(256);

void
BM_BrcrGemv(benchmark::State &state)
{
    const std::size_t rows = static_cast<std::size_t>(state.range(0));
    quant::QuantizedWeight qw = makeWeights(rows, 1024);
    auto x = makeVec(1024);
    brcr::BrcrEngine engine;
    for (auto _ : state) {
        auto res = engine.gemv(qw.values, x);
        benchmark::DoNotOptimize(res.y.data());
    }
    state.SetItemsProcessed(state.iterations() * rows * 1024);
}
BENCHMARK(BM_BrcrGemv)->Arg(64)->Arg(256);

/**
 * Reference group-column pattern walk: one BitPlane::get() per
 * (row, column), the pre-word-parallel implementation. Kept as the
 * baseline for BM_ColumnPatternsWord.
 */
void
scalarColumnPatterns(const bitslice::BitPlane &plane, std::size_t row0,
                     std::size_t m, std::vector<std::uint32_t> &out)
{
    out.assign(plane.cols(), 0);
    const std::size_t last = std::min(row0 + m, plane.rows());
    for (std::size_t r = row0; r < last; ++r) {
        const std::uint32_t shift = static_cast<std::uint32_t>(r - row0);
        for (std::size_t c = 0; c < plane.cols(); ++c)
            out[c] |= static_cast<std::uint32_t>(plane.get(r, c))
                      << shift;
    }
}

/**
 * Pattern-extraction walk over every m-row group of a sparse magnitude
 * plane — the hot loop of BRCR enumeration and BSTC encoding.
 * Measured on g++ 12 -O3 (64 x 2048 synthetic INT8 plane 5, m=4):
 *   BM_ColumnPatternsScalar   ~162 us/iter  (~0.82 G items/s)
 *   BM_ColumnPatternsWord     ~41 us/iter   (~3.2 G items/s)
 * i.e. the whole-uint64_t word reads in BitPlane::patternsAt, walking
 * only the set columns of the group's OR word, are ~3.9x faster than
 * the per-column get() walk (and more on sparser planes, where whole
 * blocks skip).
 */
void
BM_ColumnPatternsScalar(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    std::vector<std::uint32_t> patterns;
    for (auto _ : state) {
        for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
            scalarColumnPatterns(plane, row0, 4, patterns);
            benchmark::DoNotOptimize(patterns.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_ColumnPatternsScalar);

void
BM_ColumnPatternsWord(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    std::vector<std::uint32_t> patterns;
    for (auto _ : state) {
        for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
            plane.columnPatterns(row0, 4, patterns);
            benchmark::DoNotOptimize(patterns.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_ColumnPatternsWord);

/**
 * Reference pattern-dedup for one group: a fresh unordered_map per
 * call, the pre-direct-index factorizeGroup (shared baseline in
 * bench/reference_kernels.hpp). Kept as the "before" of
 * BM_FactorizeGroupDirect.
 */
void
BM_FactorizeGroupHashed(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    for (auto _ : state) {
        for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
            auto fact = bench::factorizeGroupHashed(plane, row0, 4);
            benchmark::DoNotOptimize(fact.patterns.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_FactorizeGroupHashed);

/**
 * The shipping fast path: direct-index 2^m table + reused scratch and
 * output (see brcr/enumeration.hpp). Same walk as above, no hashing
 * and no per-group allocations.
 */
void
BM_FactorizeGroupDirect(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    brcr::GroupScratch scratch;
    brcr::GroupFactorization fact;
    for (auto _ : state) {
        for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
            brcr::factorizeGroup(plane, row0, 4, scratch, fact);
            benchmark::DoNotOptimize(fact.patterns.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_FactorizeGroupDirect);

/**
 * Fig 5(b) cost comparison over one plane. The full-column dedup
 * inside builds its ColumnKeys word-parallel from packed plane words
 * (bitslice/sparsity.cpp); the pre-rewrite per-bit walk cost ~1.9x
 * more on this shape (see bench_profiling_speed for the side-by-side).
 */
void
BM_CompareMergeStrategies(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    for (auto _ : state) {
        auto cost = bitslice::compareMergeStrategies(plane, 4);
        benchmark::DoNotOptimize(&cost);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_CompareMergeStrategies);

void
BM_BstcEncode(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    for (auto _ : state) {
        bstc::BitWriter w;
        bstc::encodePlane(sm.magnitude[5], 4, w);
        benchmark::DoNotOptimize(w.words());
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_BstcEncode);

void
BM_BstcDecode(benchmark::State &state)
{
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    bstc::BitWriter w;
    bstc::encodePlane(sm.magnitude[5], 4, w);
    for (auto _ : state) {
        bstc::BitReader r(w);
        auto plane = bstc::decodePlane(r, 4, 64, 2048);
        benchmark::DoNotOptimize(&plane);
    }
    state.SetItemsProcessed(state.iterations() * 64 * 2048);
}
BENCHMARK(BM_BstcDecode);

void
BM_CamSearchSweep(benchmark::State &state)
{
    Rng rng(9);
    brcr::CamMatchUnit cam(4, 64);
    std::vector<std::uint32_t> patterns(64);
    for (auto &p : patterns)
        p = static_cast<std::uint32_t>(rng.uniformInt(16));
    cam.load(patterns);
    for (auto _ : state) {
        for (std::uint32_t key = 1; key < 16; ++key) {
            auto bm = cam.search(key);
            benchmark::DoNotOptimize(bm.data());
        }
    }
    state.SetItemsProcessed(state.iterations() * 15);
}
BENCHMARK(BM_CamSearchSweep);

// ---- SIMD kernel tiers -----------------------------------------------------
//
// Each bench runs once per compiled-and-runnable dispatch tier
// (Arg: 0 = scalar, 1 = AVX2, 2 = AVX-512); unavailable tiers skip.
// Composite paths (factorizeGroup) pin the active tier with forceTier.

bool
skipIfUnavailable(benchmark::State &state, simd::Tier tier)
{
    if (tier <= simd::availableTier())
        return false;
    state.SkipWithError("tier not available on this host/compiler");
    return true;
}

common::AlignedBuffer<std::uint64_t>
makeWordBuffer(std::size_t n)
{
    Rng rng(77);
    common::AlignedBuffer<std::uint64_t> buf(n);
    for (std::size_t i = 0; i < n; ++i)
        buf[i] = rng.next();
    return buf;
}

/** Bulk popcount scan (density/sparsity statistics) per tier. */
void
BM_SimdPopcountWords(benchmark::State &state)
{
    const auto tier = static_cast<simd::Tier>(state.range(0));
    if (skipIfUnavailable(state, tier))
        return;
    const std::size_t n = 1 << 15; // 256 KiB: larger than L1, fits L2.
    const auto words = makeWordBuffer(n);
    const simd::Kernels &k = simd::kernelsFor(tier);
    for (auto _ : state)
        benchmark::DoNotOptimize(k.popcountWords(words.data(), n));
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * n * sizeof(std::uint64_t)));
    state.SetLabel(simd::tierName(tier));
}
BENCHMARK(BM_SimdPopcountWords)->Arg(0)->Arg(1)->Arg(2);

/** Non-zero-pattern bitmap build (BRCR zero-skip front end) per tier. */
void
BM_SimdNonzeroMask32(benchmark::State &state)
{
    const auto tier = static_cast<simd::Tier>(state.range(0));
    if (skipIfUnavailable(state, tier))
        return;
    Rng rng(78);
    const std::size_t n = 1 << 16;
    std::vector<std::uint32_t> v(n);
    for (auto &p : v) // ~85% zero, like a sparse magnitude plane
        p = rng.uniformInt(100) < 85
                ? 0u
                : static_cast<std::uint32_t>(1 + rng.uniformInt(15));
    std::vector<std::uint64_t> mask((n + 63) / 64);
    const simd::Kernels &k = simd::kernelsFor(tier);
    for (auto _ : state) {
        k.nonzeroMask32(v.data(), n, mask.data());
        benchmark::DoNotOptimize(mask.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * n));
    state.SetLabel(simd::tierName(tier));
}
BENCHMARK(BM_SimdNonzeroMask32)->Arg(0)->Arg(1)->Arg(2);

/** Full-column pattern dedup (equality compares) per tier. */
void
BM_SimdCompareMerge(benchmark::State &state)
{
    const auto tier = static_cast<simd::Tier>(state.range(0));
    if (skipIfUnavailable(state, tier))
        return;
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    simd::forceTier(tier);
    for (auto _ : state) {
        auto cost = bitslice::compareMergeStrategies(plane, 4);
        benchmark::DoNotOptimize(&cost);
    }
    simd::resetTier();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 64 * 2048));
    state.SetLabel(simd::tierName(tier));
}
BENCHMARK(BM_SimdCompareMerge)->Arg(0)->Arg(1)->Arg(2);

/** BRCR group factorization (mask-walk dedup) per tier. */
void
BM_SimdFactorizeGroup(benchmark::State &state)
{
    const auto tier = static_cast<simd::Tier>(state.range(0));
    if (skipIfUnavailable(state, tier))
        return;
    quant::QuantizedWeight qw = makeWeights(64, 2048);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];
    brcr::GroupScratch scratch;
    brcr::GroupFactorization fact;
    simd::forceTier(tier);
    for (auto _ : state) {
        for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
            brcr::factorizeGroup(plane, row0, 4, scratch, fact);
            benchmark::DoNotOptimize(fact.patterns.data());
        }
    }
    simd::resetTier();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * 64 * 2048));
    state.SetLabel(simd::tierName(tier));
}
BENCHMARK(BM_SimdFactorizeGroup)->Arg(0)->Arg(1)->Arg(2);

void
BM_BgppPredict(benchmark::State &state)
{
    const std::size_t s = static_cast<std::size_t>(state.range(0));
    Rng rng(11);
    model::AttentionSet set = model::synthesizeAttention(rng, s, 64, 0.12);
    bgpp::BgppConfig cfg;
    cfg.logitScale = set.logitScale;
    bgpp::BgppPredictor pred(cfg);
    for (auto _ : state) {
        auto r = pred.predict(set.query, set.keys);
        benchmark::DoNotOptimize(r.selected.data());
    }
    state.SetItemsProcessed(state.iterations() * s * 64);
}
BENCHMARK(BM_BgppPredict)->Arg(512)->Arg(2048);

} // namespace
