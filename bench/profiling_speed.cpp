/**
 * @file
 * Profiling fast-path benchmark: wall-clock of the expensive
 * measure-then-model loop that gates every figure, serving run and
 * cluster sweep.
 *
 * Three sections:
 *  1. Cold fleet warm-up — a registry fleet's full profile working set
 *     ((model, bw) weight keys + (model, ctx-bucket, alpha) attention
 *     keys), filled serially vs fanned out over the thread pool via
 *     Registry::warmFleet. On a 1-core host the two are equal by
 *     construction; on 4+ cores the fan-out targets >= 3x. Either way
 *     the resulting stats are verified bit-identical here.
 *  2. factorizeGroup — the original unordered_map pattern dedup
 *     (bench/reference_kernels.hpp) vs the direct-index GroupScratch
 *     fast path.
 *  3. compareMergeStrategies' full-column dedup — the original
 *     per-bit get() key build (reference_kernels.hpp) vs the
 *     word-parallel packed-word walk now in bitslice/sparsity.cpp.
 *  4. SIMD dispatch tiers — the scalar reference kernels vs the
 *     CPUID-dispatched tier (common/simd/) on the popcount-scan and
 *     non-zero-mask kernels. On an AVX2-or-better host the dispatched
 *     tier must win by >= 2x; on a scalar-only host the gate skips.
 *     Section 1 doubles as the end-to-end bit-identity check: the
 *     serial fleet warms under a forced-scalar dispatch table and must
 *     match the SIMD-dispatched parallel fleet stat-for-stat.
 *
 * `--json <path>` archives the records (bench_util.hpp schema).
 */
#include <chrono>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "reference_kernels.hpp"
#include "bitslice/sign_magnitude.hpp"
#include "bitslice/sparsity.hpp"
#include "brcr/enumeration.hpp"
#include "common/aligned_buffer.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd/simd.hpp"
#include "engine/adapters.hpp"
#include "engine/registry.hpp"
#include "model/synthetic.hpp"

using namespace mcbp;

namespace {

double
seconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best-of-@p reps wall time (reduces scheduler noise). */
double
bestOf(int reps, const std::function<void()> &fn)
{
    double best = seconds(fn);
    for (int i = 1; i < reps; ++i)
        best = std::min(best, seconds(fn));
    return best;
}

// ---- Section 1: cold fleet warm-up -----------------------------------------

const std::vector<std::string> kFleet = {"mcbp", "mcbp-aggressive",
                                         "spatten", "bitwave", "a100"};
const std::vector<std::string> kModels = {"OPT1B3", "Bloom1B7", "Llama7B"};
const std::vector<std::string> kTasks = {"Cola", "MMLU", "Dolly",
                                         "Wikitext2"};

/** Warm a fresh registry's fleet at the given thread cap. */
double
coldWarmSeconds(std::size_t threads, engine::Registry &registry,
                std::vector<std::unique_ptr<engine::Accelerator>> &fleet)
{
    fleet = registry.fleet(kFleet);
    return seconds(
        [&] { registry.warmFleet(fleet, kModels, kTasks, threads); });
}

/** Exact equality of every profiled stat two fleets would consume. */
bool
fleetsBitIdentical(
    const std::vector<std::unique_ptr<engine::Accelerator>> &a,
    const std::vector<std::unique_ptr<engine::Accelerator>> &b)
{
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto *ma = dynamic_cast<const engine::McbpAdapter *>(a[i].get());
        const auto *mb = dynamic_cast<const engine::McbpAdapter *>(b[i].get());
        if (ma == nullptr || mb == nullptr)
            continue; // baselines consume the same cached keys.
        for (const std::string &mn : kModels) {
            const model::LlmConfig &m = model::findModel(mn);
            const accel::WeightStats &wa =
                ma->underlying().weightStats(m);
            const accel::WeightStats &wb =
                mb->underlying().weightStats(m);
            if (wa.brcrAddsPerMac != wb.brcrAddsPerMac ||
                wa.bstcCompressionRatio != wb.bstcCompressionRatio ||
                wa.meanBitSparsity != wb.meanBitSparsity)
                return false;
            for (const std::string &tn : kTasks) {
                const model::Workload &t = model::findTask(tn);
                const accel::AttentionStats &aa =
                    ma->underlying().attentionStats(m, t);
                const accel::AttentionStats &ab =
                    mb->underlying().attentionStats(m, t);
                if (aa.bgppSelectedFraction != ab.bgppSelectedFraction ||
                    aa.bgppPredBitsPerElem != ab.bgppPredBitsPerElem ||
                    aa.bgppRecall != ab.bgppRecall)
                    return false;
            }
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::validatedJsonPathFromArgs(argc, argv);
    bench::JsonRecords json("profiling_speed");

    bench::banner("Cold fleet warm-up: serial vs thread-pool fan-out");
    std::cout << "fleet: " << kFleet.size() << " accelerators x "
              << kModels.size() << " models x " << kTasks.size()
              << " tasks; pool threads = " << parallel::hardwareThreads()
              << "\n";
    engine::Registry serial_registry, parallel_registry;
    std::vector<std::unique_ptr<engine::Accelerator>> serial_fleet,
        parallel_fleet;
    // Warm the serial fleet with the dispatch table pinned to the
    // scalar reference kernels, the parallel one with the CPUID tier:
    // the bit-identity check below then covers scalar-vs-SIMD as well
    // as serial-vs-parallel.
    simd::forceTier(simd::Tier::Scalar);
    const double serial_s = coldWarmSeconds(1, serial_registry,
                                            serial_fleet);
    simd::resetTier();
    const double parallel_s = coldWarmSeconds(0, parallel_registry,
                                              parallel_fleet);
    const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 1.0;
    const bool identical =
        fleetsBitIdentical(serial_fleet, parallel_fleet);
    std::printf("  serial    %8.3f s  (%zu profiles)\n", serial_s,
                serial_registry.profileCache()->size());
    std::printf("  parallel  %8.3f s  (%zu profiles)\n", parallel_s,
                parallel_registry.profileCache()->size());
    std::printf("  speedup   %8.2fx   bit-identical: %s\n", speedup,
                identical ? "yes" : "NO (BUG)");
    json.begin()
        .field("section", "cold_fleet_warmup")
        .field("threads", parallel::hardwareThreads())
        .field("serial_s", serial_s)
        .field("parallel_s", parallel_s)
        .field("speedup", speedup)
        .field("profiles",
               parallel_registry.profileCache()->size())
        .field("bit_identical", identical ? 1 : 0);

    // ---- Kernel rewrites (single-thread wins) ---------------------------
    bench::banner("factorizeGroup: unordered_map vs direct-index scratch");
    Rng rng(1234);
    model::WeightProfile profile;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 2048, quant::BitWidth::Int8, profile);
    bitslice::SignMagnitude sm =
        bitslice::decompose(qw.values, quant::BitWidth::Int8);
    const bitslice::BitPlane &plane = sm.magnitude[5];

    constexpr int kIters = 40;
    std::uint64_t distinct_ref = 0, distinct_fast = 0;
    const double hashed_s = bestOf(3, [&] {
        distinct_ref = 0;
        for (int it = 0; it < kIters; ++it)
            for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4)
                distinct_ref +=
                    bench::factorizeGroupHashed(plane, row0, 4)
                        .distinctCount();
    });
    const double direct_s = bestOf(3, [&] {
        distinct_fast = 0;
        brcr::GroupScratch scratch;
        brcr::GroupFactorization fact;
        for (int it = 0; it < kIters; ++it)
            for (std::size_t row0 = 0; row0 < plane.rows(); row0 += 4) {
                brcr::factorizeGroup(plane, row0, 4, scratch, fact);
                distinct_fast += fact.distinctCount();
            }
    });
    const double fact_speedup =
        direct_s > 0.0 ? hashed_s / direct_s : 1.0;
    std::printf("  unordered_map %8.1f us/plane\n",
                hashed_s / kIters * 1e6);
    std::printf("  direct-index  %8.1f us/plane   speedup %.2fx  "
                "(counts %s)\n",
                direct_s / kIters * 1e6, fact_speedup,
                distinct_ref == distinct_fast ? "match" : "MISMATCH");
    json.begin()
        .field("section", "factorize_group")
        .field("hashed_s", hashed_s / kIters)
        .field("direct_s", direct_s / kIters)
        .field("speedup", fact_speedup)
        .field("counts_match", distinct_ref == distinct_fast ? 1 : 0);

    bench::banner(
        "compareMergeStrategies dedup: per-bit get() vs word-parallel");
    std::uint64_t scalar_adds = 0, word_adds = 0;
    const double scalar_s = bestOf(3, [&] {
        scalar_adds = 0;
        for (int it = 0; it < kIters; ++it)
            scalar_adds += bench::fullMergeAddsScalar(plane);
    });
    const double word_s = bestOf(3, [&] {
        word_adds = 0;
        for (int it = 0; it < kIters; ++it)
            word_adds +=
                bitslice::compareMergeStrategies(plane, 4).fullMergeAdds;
    });
    // word_s also pays the naive/group sections; the comparison is
    // conservative for the rewrite.
    const double dedup_speedup = word_s > 0.0 ? scalar_s / word_s : 1.0;
    std::printf("  per-bit get()  %8.1f us/plane\n",
                scalar_s / kIters * 1e6);
    std::printf("  word-parallel  %8.1f us/plane   speedup %.2fx  "
                "(adds %s)\n",
                word_s / kIters * 1e6, dedup_speedup,
                scalar_adds == word_adds ? "match" : "MISMATCH");
    json.begin()
        .field("section", "full_column_dedup")
        .field("scalar_s", scalar_s / kIters)
        .field("word_s", word_s / kIters)
        .field("speedup", dedup_speedup)
        .field("counts_match", scalar_adds == word_adds ? 1 : 0);

    // ---- Section 4: SIMD dispatch tiers ---------------------------------
    const simd::Tier tier = simd::activeTier();
    bench::banner(std::string("SIMD kernels: scalar vs dispatched (") +
                  simd::tierName(tier) + ")");
    const simd::Kernels &scalar_k =
        simd::kernelsFor(simd::Tier::Scalar);
    const simd::Kernels &simd_k = simd::kernels();

    constexpr std::size_t kWords = std::size_t{1} << 18; // 2 MiB
    common::AlignedBuffer<std::uint64_t> words(kWords);
    Rng wrng(7);
    for (std::size_t i = 0; i < kWords; ++i)
        words[i] = wrng.next();
    constexpr int kKernelIters = 64;
    std::uint64_t pop_scalar = 0, pop_simd = 0;
    const double pop_scalar_s = bestOf(3, [&] {
        pop_scalar = 0;
        for (int i = 0; i < kKernelIters; ++i)
            pop_scalar += scalar_k.popcountWords(words.data(), kWords);
    });
    const double pop_simd_s = bestOf(3, [&] {
        pop_simd = 0;
        for (int i = 0; i < kKernelIters; ++i)
            pop_simd += simd_k.popcountWords(words.data(), kWords);
    });
    const double pop_speedup =
        pop_simd_s > 0.0 ? pop_scalar_s / pop_simd_s : 1.0;
    const bool pop_match = pop_scalar == pop_simd;

    constexpr std::size_t kSlots = std::size_t{1} << 20;
    std::vector<std::uint32_t> slots(kSlots);
    for (auto &s : slots) // sparse-plane-like: ~85% zero slots
        s = wrng.uniformInt(100) < 85
                ? 0u
                : static_cast<std::uint32_t>(1 + wrng.uniformInt(15));
    std::vector<std::uint64_t> mask_scalar(kSlots / 64),
        mask_simd(kSlots / 64);
    const double mask_scalar_s = bestOf(3, [&] {
        for (int i = 0; i < kKernelIters; ++i)
            scalar_k.nonzeroMask32(slots.data(), kSlots,
                                   mask_scalar.data());
    });
    const double mask_simd_s = bestOf(3, [&] {
        for (int i = 0; i < kKernelIters; ++i)
            simd_k.nonzeroMask32(slots.data(), kSlots,
                                 mask_simd.data());
    });
    const double mask_speedup =
        mask_simd_s > 0.0 ? mask_scalar_s / mask_simd_s : 1.0;
    const bool mask_match = mask_scalar == mask_simd;

    std::printf("  popcountWords   scalar %7.2f ms  %-7s %7.2f ms  "
                "speedup %5.2fx  (%s)\n",
                pop_scalar_s * 1e3, simd::tierName(tier),
                pop_simd_s * 1e3, pop_speedup,
                pop_match ? "counts match" : "COUNT MISMATCH");
    std::printf("  nonzeroMask32   scalar %7.2f ms  %-7s %7.2f ms  "
                "speedup %5.2fx  (%s)\n",
                mask_scalar_s * 1e3, simd::tierName(tier),
                mask_simd_s * 1e3, mask_speedup,
                mask_match ? "masks match" : "MASK MISMATCH");

    // >= 2x is required only when a vector tier actually dispatches;
    // a scalar-only host skips the speedup gate (identity still binds).
    const bool vector_tier = tier >= simd::Tier::Avx2;
    const bool simd_gate =
        pop_match && mask_match &&
        (!vector_tier || (pop_speedup >= 2.0 && mask_speedup >= 2.0));
    if (!vector_tier)
        std::printf("  speedup gate skipped (scalar-only dispatch)\n");
    else
        std::printf("  speedup gate (>= 2x): %s\n",
                    simd_gate ? "pass" : "FAIL");
    json.begin()
        .field("section", "simd_kernels")
        .field("simd_tier", simd::tierName(tier))
        .field("popcount_scalar_s", pop_scalar_s / kKernelIters)
        .field("popcount_simd_s", pop_simd_s / kKernelIters)
        .field("popcount_speedup", pop_speedup)
        .field("nonzero_mask_scalar_s", mask_scalar_s / kKernelIters)
        .field("nonzero_mask_simd_s", mask_simd_s / kKernelIters)
        .field("nonzero_mask_speedup", mask_speedup)
        .field("bit_identical", pop_match && mask_match ? 1 : 0)
        .field("gate_enforced", vector_tier ? 1 : 0);

    json.writeIfRequested(argc, argv);
    return identical && distinct_ref == distinct_fast &&
                   scalar_adds == word_adds && simd_gate
               ? 0
               : 1;
}
