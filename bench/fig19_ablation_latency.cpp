/**
 * @file
 * Fig 19: latency ablation of the three techniques.
 *   (a) cumulative: baseline -> +BRCR -> +BSTC -> +BGPP, per model
 *       (paper: BRCR cuts ~30%, BSTC/BGPP a further ~44% combined);
 *   (b) per-technique speedup vs prompt/decode length on Llama7B:
 *       Dolly (prompt-dominated) vs MBPP (decode-dominated).
 */
#include <iostream>

#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace mcbp;

namespace {

accel::McbpAccelerator
makeConfig(bool brcr, bool bstc, bool bgpp)
{
    accel::McbpOptions o;
    o.enableBrcr = brcr;
    o.enableBstc = bstc;
    o.enableBgpp = bgpp;
    return accel::McbpAccelerator(sim::defaultConfig(), o);
}

} // namespace

int
main()
{
    bench::banner("Fig 19(a): cumulative latency ablation (normalized to "
                  "baseline)");
    {
        Table t({"Model", "Baseline", "+BRCR", "+BSTC", "+BGPP"});
        // The paper's bars mix prompt- and decode-heavy behaviour:
        // average the normalized latency over one task of each kind.
        const std::vector<model::Workload> tasks = {
            model::findTask("Dolly"), model::findTask("Wikilingua"),
            model::findTask("MBPP")};
        for (const auto &m : model::modelZoo()) {
            auto mean_norm = [&](bool r, bool c, bool p) {
                double acc = 0.0;
                for (const auto &task : tasks) {
                    const double base = makeConfig(false, false, false)
                                            .run(m, task)
                                            .totalCycles();
                    acc += makeConfig(r, c, p).run(m, task).totalCycles() /
                           base;
                }
                return acc / static_cast<double>(tasks.size());
            };
            t.addRow({m.name, fmt(1.0), fmt(mean_norm(true, false, false)),
                      fmt(mean_norm(true, true, false)),
                      fmt(mean_norm(true, true, true))});
        }
        t.print(std::cout);
        std::cout << "Paper reference: +BRCR ~0.70, +BSTC ~0.45, "
                     "+BGPP ~0.26 of baseline latency.\n";
    }

    bench::banner("Fig 19(b): per-technique speedup vs sequence length "
                  "(Llama7B)");
    {
        const model::LlmConfig &m = model::findModel("Llama7B");
        // Drop-one ablation: each technique's contribution is the
        // slowdown from removing it while the other two stay enabled.
        Table t({"Scenario", "BRCR speedup", "BSTC speedup",
                 "BGPP speedup"});
        struct Scene
        {
            std::string label;
            model::Workload w;
        };
        std::vector<Scene> scenes;
        scenes.push_back({"Dolly 1k prompt (48 decode)",
                          model::withLengths(model::findTask("Dolly"),
                                             1024, 48)});
        scenes.push_back({"Dolly 4k prompt (48 decode)",
                          model::withLengths(model::findTask("Dolly"),
                                             4096, 48)});
        scenes.push_back({"MBPP 1k decode (48 prompt)",
                          model::withLengths(model::findTask("MBPP"), 48,
                                             1024)});
        scenes.push_back({"MBPP 4k decode (48 prompt)",
                          model::withLengths(model::findTask("MBPP"), 48,
                                             4096)});
        for (const auto &sc : scenes) {
            const double full =
                makeConfig(true, true, true).run(m, sc.w).totalCycles();
            const double no_brcr =
                makeConfig(false, true, true).run(m, sc.w).totalCycles();
            const double no_bstc =
                makeConfig(true, false, true).run(m, sc.w).totalCycles();
            const double no_bgpp =
                makeConfig(true, true, false).run(m, sc.w).totalCycles();
            t.addRow({sc.label, fmtX(no_brcr / full), fmtX(no_bstc / full),
                      fmtX(no_bgpp / full)});
        }
        t.print(std::cout);
        std::cout << "Paper reference: BRCR dominates prompt-heavy Dolly "
                     "(3.9x/2.8x at 1k/4k); BSTC dominates short-decode "
                     "MBPP (2.7x at 1k) with BGPP overtaking at 4k "
                     "decode (2.1x).\n";
    }
    return 0;
}
