/**
 * @file
 * Fig 23: per-stage (prefill / decoding) speedup and energy comparison
 * against SOFA, Spatten, FACT, Bitwave and FuseKNA on Llama7B for Dolly,
 * Wikilingua and MBPP.
 *
 * Paper shape: MCBP averages 6.2x (prefill) and 4.8x (decode) over the
 * field; bit-reorder energy is large for FuseKNA (~30%) and Bitwave
 * (~18%) but ~3% for MCBP.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"

using namespace mcbp;

int
main(int argc, char **argv)
{
    // Reject a bad --json path before running the figure sweeps.
    (void)bench::validatedJsonPathFromArgs(argc, argv);
    bench::JsonRecords json("fig23_sota_comparison");
    const model::LlmConfig &m = model::findModel("Llama7B");

    // SOFA first: it is the normalization baseline for both stages.
    engine::Registry registry;
    auto fleet = registry.fleet(
        {"sofa", "spatten", "fact", "bitwave", "fusekna", "mcbp"});
    // Profile the whole working set on all cores before the serial
    // figure loops (bit-identical stats either way).
    registry.warmFleet(fleet, {m}, {model::findTask("Dolly"),
                                    model::findTask("Wikilingua"),
                                    model::findTask("MBPP")});

    for (bool decode_stage : {false, true}) {
        bench::banner(std::string("Fig 23: ") +
                      (decode_stage ? "decoding" : "prefill") +
                      " stage, Llama7B (speedup vs SOFA, energy "
                      "normalized to SOFA)");
        Table t({"Task", "Accel", "Speedup", "Norm energy",
                 "Bit-reorder share"});
        for (const char *task_name : {"Dolly", "Wikilingua", "MBPP"}) {
            const model::Workload &task = model::findTask(task_name);

            struct Entry
            {
                std::string name;
                double cycles;
                double energy;
                double reorder;
            };
            std::vector<Entry> entries;
            for (const auto &accel : fleet) {
                const accel::RunMetrics r = accel->run(m, task);
                const auto &ph = decode_stage ? r.decode : r.prefill;
                entries.push_back(
                    {accel->name(), ph.cycles, ph.energy.totalPj(),
                     ph.energy.bitReorderPj /
                         std::max(1.0, ph.energy.totalPj())});
            }

            const double base_cycles = entries.front().cycles;
            const double base_energy = entries.front().energy;
            for (const Entry &e : entries) {
                t.addRow({task_name, e.name,
                          fmtX(base_cycles / e.cycles),
                          fmt(e.energy / base_energy),
                          fmtPct(e.reorder)});
                json.begin()
                    .field("stage",
                           decode_stage ? "decode" : "prefill")
                    .field("task", task_name)
                    .field("accelerator", e.name)
                    .field("speedup_vs_sofa", base_cycles / e.cycles)
                    .field("norm_energy", e.energy / base_energy)
                    .field("bit_reorder_share", e.reorder);
            }
        }
        t.print(std::cout);
    }
    std::cout << "\nPaper reference: MCBP mean 6.2x (prefill) / 4.8x "
                 "(decode); bit-reorder ~30% for FuseKNA, ~18% for "
                 "Bitwave, ~3% for MCBP.\n";

    // SOTA under serving load: the same designs behind a KV-bounded
    // continuous-batching engine with paged admission. Compute-side
    // speedups translate into admitted throughput once the KV pool —
    // not the datapath — is the binding resource.
    {
        model::TraceConfig tc;
        tc.model = "Llama7B";
        tc.task = "Dolly";
        tc.requests = 24;
        tc.arrivalsPerSecond = 4.0;
        tc.seed = 9;
        const std::vector<model::Request> trace =
            model::synthesizeTrace(tc);
        // Budget: room for ~3 of the largest requests, so admission
        // (not the datapath) is the bottleneck but everything fits.
        engine::KvOptions quant;
        quant.policy = engine::KvPolicy::Paged;
        const double per_token =
            static_cast<double>(m.kvBytesPerToken());
        double max_footprint = 0.0;
        for (const model::Request &r : trace)
            max_footprint = std::max(
                max_footprint,
                engine::kvFootprintBytes(quant, per_token, r.promptLen,
                                         r.decodeLen));
        const double budget = 3.0 * max_footprint;
        bench::banner("Fig 23(+): KV-bounded serving (paged, " +
                      std::to_string(budget / 1e9) +
                      " GB budget), Llama7B/Dolly trace");
        Table t({"Accel", "tok/s", "p99 latency [s]", "Preemptions",
                 "Recomputed tokens", "Block fill"});
        // The pipelined MCBP rides along: same KV budget, but spread
        // over pp=2 per-stage pools (kvShards), with the serving
        // engine overlapping decode traversals across the stages.
        for (const char *spec :
             {"sofa", "spatten", "mcbp", "mcbp:pp=2,mb=8"}) {
            auto accel = registry.make(spec);
            engine::ServingOptions opts;
            opts.maxBatch = 16;
            opts.kvPolicy = engine::KvPolicy::Paged;
            opts.kvCapacityBytes = budget;
            const engine::ServingReport r =
                engine::ServingSimulator(*accel, opts).simulate(trace);
            t.addRow({r.accelerator, fmt(r.tokensPerSecond, 0),
                      fmt(r.p99LatencySeconds, 3),
                      std::to_string(r.preemptions),
                      std::to_string(r.recomputedTokens),
                      fmtPct(r.kvBlockUtilization)});
            // Shared serving schema (bench_util.hpp): the archive
            // carries the full paging stats for every design.
            bench::appendServingFields(
                json.begin().field("stage", "serving"), r);
        }
        t.print(std::cout);
    }
    json.writeIfRequested(argc, argv);
    return 0;
}
