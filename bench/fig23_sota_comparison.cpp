/**
 * @file
 * Fig 23: per-stage (prefill / decoding) speedup and energy comparison
 * against SOFA, Spatten, FACT, Bitwave and FuseKNA on Llama7B for Dolly,
 * Wikilingua and MBPP.
 *
 * Paper shape: MCBP averages 6.2x (prefill) and 4.8x (decode) over the
 * field; bit-reorder energy is large for FuseKNA (~30%) and Bitwave
 * (~18%) but ~3% for MCBP.
 */
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"

using namespace mcbp;

int
main()
{
    const model::LlmConfig &m = model::findModel("Llama7B");

    // SOFA first: it is the normalization baseline for both stages.
    engine::Registry registry;
    auto fleet = registry.fleet(
        {"sofa", "spatten", "fact", "bitwave", "fusekna", "mcbp"});
    // Profile the whole working set on all cores before the serial
    // figure loops (bit-identical stats either way).
    registry.warmFleet(fleet, {m}, {model::findTask("Dolly"),
                                    model::findTask("Wikilingua"),
                                    model::findTask("MBPP")});

    for (bool decode_stage : {false, true}) {
        bench::banner(std::string("Fig 23: ") +
                      (decode_stage ? "decoding" : "prefill") +
                      " stage, Llama7B (speedup vs SOFA, energy "
                      "normalized to SOFA)");
        Table t({"Task", "Accel", "Speedup", "Norm energy",
                 "Bit-reorder share"});
        for (const char *task_name : {"Dolly", "Wikilingua", "MBPP"}) {
            const model::Workload &task = model::findTask(task_name);

            struct Entry
            {
                std::string name;
                double cycles;
                double energy;
                double reorder;
            };
            std::vector<Entry> entries;
            for (const auto &accel : fleet) {
                const accel::RunMetrics r = accel->run(m, task);
                const auto &ph = decode_stage ? r.decode : r.prefill;
                entries.push_back(
                    {accel->name(), ph.cycles, ph.energy.totalPj(),
                     ph.energy.bitReorderPj /
                         std::max(1.0, ph.energy.totalPj())});
            }

            const double base_cycles = entries.front().cycles;
            const double base_energy = entries.front().energy;
            for (const Entry &e : entries) {
                t.addRow({task_name, e.name,
                          fmtX(base_cycles / e.cycles),
                          fmt(e.energy / base_energy),
                          fmtPct(e.reorder)});
            }
        }
        t.print(std::cout);
    }
    std::cout << "\nPaper reference: MCBP mean 6.2x (prefill) / 4.8x "
                 "(decode); bit-reorder ~30% for FuseKNA, ~18% for "
                 "Bitwave, ~3% for MCBP.\n";
    return 0;
}
