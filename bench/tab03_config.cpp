/**
 * @file
 * Table 3: the MCBP hardware configuration, printed from the live
 * McbpConfig (so any configuration change shows up here), plus derived
 * capability numbers.
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/area_model.hpp"
#include "sim/mcbp_config.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Table 3: MCBP hardware configuration");
    const sim::McbpConfig &cfg = sim::defaultConfig();
    std::cout << cfg.toString();

    bench::banner("Derived figures");
    Table t({"Quantity", "Value"});
    t.addRow({"Peak add lanes / cycle", fmt(cfg.peakAddsPerCycle(), 0)});
    t.addRow({"HBM bytes / core cycle", fmt(cfg.hbmBytesPerCycle(), 0)});
    t.addRow({"Total SRAM [kB]",
              std::to_string(cfg.totalSramKb())});
    t.addRow({"Die area [mm^2]",
              fmt(sim::computeArea(cfg).total(), 2)});
    t.print(std::cout);
    return 0;
}
