/**
 * @file
 * Fig 25 (+ Fig 8c): bit-level sparsity under different quantization
 * strategies — PTQ INT8, QAT INT8, PTQ INT4 — on Llama13B, and the
 * resulting BRCR/BSTC gains.
 *
 * Paper shape: PTQ and QAT INT8 distributions (and bit sparsities) are
 * nearly identical (~11x value sparsity); PTQ INT4 raises value sparsity
 * to ~16% but bit sparsity stays ~4x higher (~66%). BRCR cuts
 * computation 80%/79%/51% and BSTC cuts memory 71%/70%/41% for
 * PTQ8/QAT8/PTQ4.
 */
#include <iostream>

#include "bench_util.hpp"
#include "bitslice/sparsity.hpp"
#include "brcr/brcr_engine.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/llm_config.hpp"
#include "model/synthetic.hpp"

using namespace mcbp;

namespace {

struct QuantScenario
{
    std::string name;
    quant::BitWidth bw;
    bool qat;
    /** Clip percentile: PTQ INT8 uses absmax (1.0); QAT INT8 clips like
     *  a learned step (0.9999, nearly identical to PTQ, Fig 25a); PTQ
     *  INT4 uses group-wise-style clipping (0.995) as QLLM does, or the
     *  4-bit grid would zero out nearly everything. */
    double clip;
};

} // namespace

int
main()
{
    bench::banner("Fig 25: bit vs value sparsity under PTQ INT8 / QAT "
                  "INT8 / PTQ INT4 (Llama13B)");

    const model::LlmConfig &m = model::findModel("Llama13B");
    model::WeightProfile profile;
    profile.dynamicRange = m.dynamicRange;

    const std::vector<QuantScenario> scenarios = {
        {"PTQ INT8", quant::BitWidth::Int8, false, 1.0},
        {"QAT INT8", quant::BitWidth::Int8, true, 0.9999},
        {"PTQ INT4", quant::BitWidth::Int4, true, 0.995},
    };

    Table t({"Scheme", "Value SR", "Mean bit SR", "Bit/Value", "MSB plane "
             "SR", "BRCR comp cut", "BSTC mem cut"});
    for (const auto &sc : scenarios) {
        Rng rng(77);
        FloatMatrix wf = model::gaussianWeights(rng, 48, 2048, profile);
        quant::QuantizedWeight qw =
            sc.qat ? quant::quantizeWeightQat(wf, sc.bw, sc.clip)
                   : quant::quantizeWeight(wf, sc.bw);
        bitslice::SparsityReport rep =
            bitslice::analyzeSparsity(qw.values, sc.bw);

        // BRCR computation cut vs dense bit-serial.
        std::vector<std::int8_t> x(2048);
        for (auto &v : x)
            v = static_cast<std::int8_t>(
                static_cast<std::int64_t>(rng.uniformInt(255)) - 127);
        brcr::BrcrEngine engine({4, sc.bw});
        brcr::BrcrGemvResult res = engine.gemv(qw.values, x);
        const double planes =
            static_cast<double>(quant::magnitudeBits(sc.bw));
        const double dense = planes * static_cast<double>(qw.values.size());
        const double comp_cut =
            1.0 - static_cast<double>(res.ops.totalAdds()) / dense;

        // BSTC memory cut.
        bstc::PlanePolicy policy = bstc::adaptivePolicy(rep);
        bstc::CompressedWeight cw(qw.values, sc.bw, 4, policy, 512);
        const double mem_cut = 1.0 - 1.0 / cw.compressionRatio();

        t.addRow({sc.name, fmtPct(rep.valueSparsity),
                  fmtPct(rep.meanBitSparsity),
                  fmtX(rep.meanBitSparsity /
                       std::max(1e-9, rep.valueSparsity), 1),
                  fmtPct(rep.planeSparsity.back()),
                  fmtPct(comp_cut), fmtPct(mem_cut)});
    }
    t.print(std::cout);

    bench::banner("Fig 8(c): per-plane sparsity ratio, SM format");
    Table p({"Model", "Plane1", "Plane2", "Plane3", "Plane4", "Plane5",
             "Plane6", "Plane7 (MSB)"});
    for (const char *name : {"Llama7B", "Qwen7B"}) {
        const model::LlmConfig &mm = model::findModel(name);
        Rng rng(88);
        model::WeightProfile pr;
        pr.dynamicRange = mm.dynamicRange;
        quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
            rng, 48, mm.hidden, quant::BitWidth::Int8, pr);
        bitslice::SparsityReport rep =
            bitslice::analyzeSparsity(qw.values, quant::BitWidth::Int8);
        std::vector<std::string> row = {name};
        for (double s : rep.planeSparsity)
            row.push_back(fmtPct(s));
        p.addRow(row);
    }
    p.print(std::cout);
    std::cout << "Paper reference: planes 3-7 all exceed the 65% BSTC "
                 "break-even for both models; PTQ/QAT INT8 bit sparsity "
                 "~11x value sparsity, PTQ INT4 ~4x.\n";
    return 0;
}
