/**
 * @file
 * Fig 26: comparison with Cambricon-C (SOTA INT4 lookup accelerator,
 * extended to W4A8 as in section 6) on the Dolly task for Bloom1B7,
 * Llama7B and Llama13B, per stage.
 *
 * Paper shape: prefill — MCBP 1.5x faster / 33% less energy on Llama13B,
 * 1.8x / 50% on Bloom1B7; decode — mean 2.4x from BSTC-on-INT4 + BGPP.
 */
#include <iostream>

#include "accel/baselines.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Fig 26: MCBP (W4A8 mode) vs Cambricon-C on Dolly");

    const model::Workload &dolly = model::findTask("Dolly");

    Table t({"Model", "Stage", "Speedup vs Cam-C", "Norm energy"});
    double decode_speedup_sum = 0.0;
    int n = 0;
    for (const char *name : {"Bloom1B7", "Llama7B", "Llama13B"}) {
        const model::LlmConfig &m = model::findModel(name);
        accel::WeightStats ws4 =
            accel::profileWeights(m, quant::BitWidth::Int4, 1);
        accel::BaselineAccelerator camc(accel::makeCambriconC(ws4));
        accel::RunMetrics rc = camc.run(m, dolly);

        // MCBP in W4A8 mode: INT4 weights through BRCR/BSTC + BGPP.
        accel::McbpOptions opts;
        opts.bitWidth = quant::BitWidth::Int4;
        accel::McbpAccelerator mcbp(sim::defaultConfig(), opts);
        accel::RunMetrics rm = mcbp.run(m, dolly);

        for (bool decode : {false, true}) {
            const auto &pm = decode ? rm.decode : rm.prefill;
            const auto &pc = decode ? rc.decode : rc.prefill;
            const double speedup = pc.cycles / pm.cycles;
            const double energy =
                pm.energy.totalPj() / pc.energy.totalPj();
            t.addRow({name, decode ? "decode" : "prefill", fmtX(speedup),
                      fmt(energy)});
            if (decode) {
                decode_speedup_sum += speedup;
                ++n;
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nMean decode speedup: "
              << fmtX(decode_speedup_sum / n)
              << "\nPaper reference: prefill 1.5x (Llama13B) to 1.8x "
                 "(Bloom1B7) with 33-50% energy saving; decode mean "
                 "2.4x.\n";
    return 0;
}
