/**
 * @file
 * Fig 18 (+ Fig 8b): design-space exploration of the group size m —
 * computation reduction (min/max across models, via the measured BRCR
 * engine) and BSTC compression rate, per m.
 *
 * Paper shape: computation reduction peaks near m=5, compression rate
 * peaks at m=4; m=4 is the chosen balance.
 */
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "brcr/brcr_engine.hpp"
#include "bstc/codec.hpp"
#include "bstc/compressed_weight.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/llm_config.hpp"
#include "model/synthetic.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Fig 18: DSE of group size m (computation reduction & "
                  "compression rate)");

    Table t({"m", "CPR min", "CPR max", "CR (measured)", "CR (SR=0.9 "
             "analytic)"});
    double best_cpr = 0.0, best_cr = 0.0;
    std::size_t best_cpr_m = 0, best_cr_m = 0;

    for (std::size_t m = 1; m <= 9; ++m) {
        double cpr_min = std::numeric_limits<double>::max();
        double cpr_max = 0.0;
        double cr_sum = 0.0;
        int cr_n = 0;
        for (const auto &model : model::modelZoo()) {
            Rng rng(404 + model.hidden);
            model::WeightProfile profile;
            profile.dynamicRange = model.dynamicRange;
            quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
                rng, 32, std::min<std::size_t>(model.hidden, 2048),
                quant::BitWidth::Int8, profile);
            std::vector<std::int8_t> x(qw.values.cols());
            for (auto &v : x)
                v = static_cast<std::int8_t>(
                    static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

            // Computation reduction vs dense bit-serial (7 adds/MAC).
            brcr::BrcrEngine engine({m, quant::BitWidth::Int8});
            brcr::BrcrGemvResult res = engine.gemv(qw.values, x);
            const double dense =
                7.0 * static_cast<double>(qw.values.size());
            const double cpr =
                dense / static_cast<double>(res.ops.totalAdds());
            cpr_min = std::min(cpr_min, cpr);
            cpr_max = std::max(cpr_max, cpr);

            // Compression rate with the paper plane policy at this m.
            bstc::PlanePolicy policy = bstc::paperDefaultPolicy(7);
            bstc::CompressedWeight cw(qw.values, quant::BitWidth::Int8, m,
                                      policy, 512);
            cr_sum += cw.compressionRatio();
            ++cr_n;
        }
        const double cr = cr_sum / cr_n;
        if (cpr_max > best_cpr) {
            best_cpr = cpr_max;
            best_cpr_m = m;
        }
        if (cr > best_cr) {
            best_cr = cr;
            best_cr_m = m;
        }
        t.addRow({std::to_string(m), fmtX(cpr_min), fmtX(cpr_max),
                  fmtX(cr), fmtX(bstc::analyticCompressionRatio(0.9, m))});
    }
    t.print(std::cout);
    std::cout << "\nMeasured optima: computation reduction peaks at m="
              << best_cpr_m << ", compression rate at m=" << best_cr_m
              << ".\nPaper reference: CPR peaks at m=5, CR at m=4; m=4 "
                 "chosen as the balance (and divides hidden dims).\n";
    return 0;
}
