/**
 * @file
 * Table 2 (fidelity-proxy substitution, DESIGN.md section 1): the paper
 * reports task accuracy under FP16 / INT8 / MCBP standard / MCBP
 * aggressive on real checkpoints. Offline we run a complete decoder
 * block with the same numerical pipeline (per-channel INT8 weights,
 * per-tensor asymmetric activations, BGPP-pruned attention) and report
 * block-output cosine similarity to FP32 plus BGPP selection recall —
 * the mechanisms that determine those accuracy columns.
 *
 * Expected shape: INT8 ~ lossless; MCBP(S) (alpha 0.6) within noise of
 * INT8; MCBP(A) (alpha 0.5) slightly below — mirroring the paper's
 * <1% aggregate drop.
 */
#include <iostream>

#include "bench_util.hpp"
#include "bgpp/bgpp_predictor.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/llm_config.hpp"
#include "model/transformer.hpp"

using namespace mcbp;

namespace {

model::KeySelector
bgppSelector(double alpha)
{
    return [alpha](const std::vector<std::int8_t> &q,
                   const Int8Matrix &keys, double logit_scale) {
        bgpp::BgppConfig cfg;
        cfg.alpha = alpha;
        cfg.logitScale = logit_scale;
        bgpp::BgppPredictor pred(cfg);
        return pred.predict(q, keys).selected;
    };
}

} // namespace

int
main()
{
    bench::banner("Table 2 proxy: block-output fidelity (cosine to FP32) "
                  "for INT8 / MCBP(S) / MCBP(A)");

    Table t({"Model profile", "INT8 cosine", "MCBP(S) cosine",
             "MCBP(A) cosine", "INT8 relErr", "MCBP(A) relErr"});
    for (const auto &mc : model::modelZoo()) {
        Rng rng(mc.hidden * 7 + 1);
        model::WeightProfile profile;
        profile.sigma = 0.08;
        profile.dynamicRange = mc.dynamicRange;
        // Scaled-down block with the model's head structure.
        const std::size_t hidden = 64, heads = 4, ffn = 128;
        model::TransformerLayer layer(
            model::randomLayer(rng, hidden, heads, ffn, profile));
        FloatMatrix x = model::gaussianActivations(rng, 24, hidden, 1.0);

        FloatMatrix ref = layer.forwardF32(x);
        quant::ErrorStats int8 =
            model::layerFidelity(ref, layer.forwardInt8(x));
        quant::ErrorStats std_cfg = model::layerFidelity(
            ref, layer.forwardPruned(x, bgppSelector(0.8)));
        quant::ErrorStats agg_cfg = model::layerFidelity(
            ref, layer.forwardPruned(x, bgppSelector(0.6)));

        t.addRow({mc.name, fmt(int8.cosine, 4), fmt(std_cfg.cosine, 4),
                  fmt(agg_cfg.cosine, 4), fmtPct(int8.relFrobenius),
                  fmtPct(agg_cfg.relFrobenius)});
    }
    t.print(std::cout);
    std::cout << "\nPaper reference (Table 2): INT8 loses <1% accuracy vs "
                 "FP16 on all 22 model-task pairs; MCBP standard matches "
                 "INT8; MCBP aggressive trades ~1% for extra sparsity.\n"
                 "Substitution note: real-checkpoint task accuracy is not "
                 "measurable offline; cosine/relative-error of the exact "
                 "same numerical pipeline is the stand-in (DESIGN.md "
                 "section 1).\n";
    return 0;
}
