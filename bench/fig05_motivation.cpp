/**
 * @file
 * Fig 5: the four motivation studies.
 *   (b) computation reduction: vanilla full-size merge vs group-wise
 *       merge across the 5 LLMs (paper mean: group-wise 5.1x better);
 *   (d) value sparsity vs bit sparsity across the 5 LLMs (mean 10.1x);
 *   (f) attention latency: dense vs top-k (prediction becomes the
 *       bottleneck, ~56% of the remaining time);
 *   (g) KV-cache access: vanilla top-k vs BGPP vs the oracle optimum
 *       (paper: ~2.9x mean reduction, 49.6% below value-level top-k).
 */
#include <iostream>

#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "bitslice/sparsity.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/synthetic.hpp"

using namespace mcbp;

namespace {

void
figB_and_D()
{
    bench::banner("Fig 5(b)(d): merge strategies and value-vs-bit sparsity "
                  "across LLMs");
    Table t({"Model", "Full-size merge", "Group-wise merge (m=4)",
             "Group adv.", "Value SR", "Bit SR", "Bit/Value"});
    double adv_sum = 0.0, ratio_sum = 0.0;
    for (const auto &m : model::modelZoo()) {
        Rng rng(101 + m.hidden);
        model::WeightProfile profile;
        profile.dynamicRange = m.dynamicRange;
        quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
            rng, 64, m.hidden, quant::BitWidth::Int8, profile);
        bitslice::SparsityReport sr =
            bitslice::analyzeSparsity(qw.values, quant::BitWidth::Int8);
        // Aggregate merge costs over all magnitude planes. Reductions
        // are relative to dense bit-serial execution: the vanilla
        // full-size merge streams all bits of every distinct column, so
        // with rare full-column duplicates it barely improves on dense.
        bitslice::SignMagnitude sm =
            bitslice::decompose(qw.values, quant::BitWidth::Int8);
        double dense = 0, full = 0, group = 0;
        for (const auto &plane : sm.magnitude) {
            bitslice::MergeCost c =
                bitslice::compareMergeStrategies(plane, 4);
            dense += static_cast<double>(c.denseAdds);
            full += static_cast<double>(c.fullMergeDenseAdds);
            group += static_cast<double>(c.groupMergeAdds);
        }
        const double red_full = dense / full;
        const double red_group = dense / group;
        const double adv = red_group / red_full;
        const double ratio = sr.meanBitSparsity /
                             std::max(1e-9, sr.valueSparsity);
        adv_sum += adv;
        ratio_sum += ratio;
        t.addRow({m.name, fmtX(red_full), fmtX(red_group), fmtX(adv),
                  fmtPct(sr.valueSparsity), fmtPct(sr.meanBitSparsity),
                  fmtX(ratio, 1)});
    }
    const double n = static_cast<double>(model::modelZoo().size());
    t.addRow({"Mean", "-", "-", fmtX(adv_sum / n), "-", "-",
              fmtX(ratio_sum / n, 1)});
    t.print(std::cout);
    std::cout << "Paper reference: group-wise merge 5.1x better than "
                 "full-size merge; bit sparsity 10.1x value sparsity.\n";
}

void
figF_and_G()
{
    bench::banner("Fig 5(f)(g): top-k prediction overhead and KV access "
                  "reduction");
    // (f) dense vs top-k attention latency split on Llama7B decode.
    {
        const model::LlmConfig &m = model::findModel("Llama7B");
        const model::Workload &task = model::findTask("Wikitext2");
        accel::AttentionStats as =
            accel::profileAttention(m, task, 0.6, 1);
        // Dense attention: all keys + values loaded and computed, plus
        // the softmax pass; top-k: prediction (4+1 bit scan of all keys)
        // followed by formal compute (QK^T + softmax + PV) on the
        // selected keys only.
        const double ctx = static_cast<double>(task.promptLen);
        const double dense = 2.0 * ctx * 8.0 + ctx * 8.0;
        const double pred = ctx * as.valuePredBitsPerElem;
        const double formal = 3.0 * ctx * 8.0 * as.topkFraction;
        const double topk_total = pred + formal;
        Table t({"Scheme", "Norm latency", "Prediction share"});
        t.addRow({"Dense attention", fmt(1.0), "-"});
        t.addRow({"Top-k attention", fmt(topk_total / dense),
                  fmtPct(pred / topk_total)});
        t.print(std::cout);
        std::cout << "Paper reference: top-k cuts attention latency ~45%, "
                     "but prediction becomes ~56% of what remains.\n";
    }
    // (g) KV traffic: vanilla top-k / value top-k / BGPP / oracle.
    {
        Table t({"Scenario", "Vanilla top-k", "Value top-k", "BGPP (ours)",
                 "Oracle optimal"});
        struct Scene
        {
            const char *name;
            const char *model;
            const char *task;
        };
        for (const Scene &sc :
             {Scene{"Llama7B-cola", "Llama7B", "Cola"},
              Scene{"Llama7B-dolly", "Llama7B", "Dolly"},
              Scene{"Llama13B-dolly", "Llama13B", "Dolly"}}) {
            const model::LlmConfig &m = model::findModel(sc.model);
            const model::Workload &task = model::findTask(sc.task);
            Rng rng(7);
            const std::size_t s =
                std::min<std::size_t>(task.promptLen, 2048);
            model::AttentionSet set = model::synthesizeAttention(
                rng, s, m.headDim(), task.attentionConcentration);
            bgpp::BgppConfig cfg;
            cfg.alpha = 0.6;
            cfg.logitScale = set.logitScale;
            bgpp::BgppPredictor pred(cfg);
            bgpp::BgppResult br = pred.predict(set.query, set.keys);
            const std::size_t k = std::max<std::size_t>(
                1, br.selected.size());
            bgpp::TopkResult vt = bgpp::valueTopk(set.query, set.keys, k);
            // Per-scheme K bits: prediction + formal fetch of selected.
            const double formal = static_cast<double>(k) *
                                  m.headDim() * 8.0;
            const double vanilla =
                static_cast<double>(s) * m.headDim() * 8.0 + formal;
            const double value =
                static_cast<double>(vt.bitsFetched) + formal;
            const double ours =
                static_cast<double>(br.bitsFetched) + formal;
            const double oracle = formal;
            t.addRow({sc.name, fmtX(vanilla / ours),
                      fmtX(value / ours), fmtX(1.0),
                      fmtX(oracle / ours)});
        }
        t.print(std::cout);
        std::cout << "(columns normalized to BGPP=1; >1 means that scheme "
                     "moves more KV bits)\n";
        std::cout << "Paper reference: BGPP cuts KV accesses up to ~50% vs "
                     "value-level prediction, ~2.9x vs vanilla top-k.\n";
    }
}

} // namespace

int
main()
{
    figB_and_D();
    figF_and_G();
    return 0;
}
