/**
 * @file
 * Fig 17: normalized computation (prefill stage) and normalized memory
 * access (decoding stage) of LLM inference across accelerators and the
 * five models.
 *
 * Paper shape: SOFA (value-level, attention-only) is the computation
 * baseline; Bitwave improves ~32%, FuseKNA ~49%, MCBP up to ~72.4%.
 * For memory, FuseKNA (value RLE) is the baseline and MCBP averages
 * ~75.8% reduction.
 */
#include <iostream>

#include "accel/baselines.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Fig 17: normalized prefill computation and decode "
                  "memory access across accelerators");

    const model::Workload task = model::findTask("Wikilingua");

    Table comp({"Model", "SOFA", "Spatten", "FACT", "Bitwave", "FuseKNA",
                "MCBP"});
    Table mem({"Model", "FuseKNA", "FACT", "Spatten", "Energon", "Bitwave",
               "MCBP"});

    for (const auto &m : model::modelZoo()) {
        accel::WeightStats ws =
            accel::profileWeights(m, quant::BitWidth::Int8, 1);
        accel::AttentionStats as = accel::profileAttention(m, task, 0.6, 1);
        accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
        accel::RunMetrics rm = mcbp.run(m, task);

        auto run = [&](const accel::BaselineTraits &tr) {
            return accel::BaselineAccelerator(tr).run(m, task);
        };
        accel::RunMetrics sofa = run(accel::makeSofa(as));
        accel::RunMetrics spatten = run(accel::makeSpatten(as));
        accel::RunMetrics fact = run(accel::makeFact(as));
        accel::RunMetrics bitwave = run(accel::makeBitwave(ws));
        accel::RunMetrics fusekna = run(accel::makeFuseKna(ws));
        accel::RunMetrics energon = run(accel::makeEnergon(as));

        // Computation: effective datapath ops in prefill, normalized to
        // SOFA (the paper's computation baseline).
        const double base_c = sofa.prefill.executedAdds;
        comp.addRow({m.name, fmt(1.0),
                     fmt(spatten.prefill.executedAdds / base_c),
                     fmt(fact.prefill.executedAdds / base_c),
                     fmt(bitwave.prefill.executedAdds / base_c),
                     fmt(fusekna.prefill.executedAdds / base_c),
                     fmt(rm.prefill.executedAdds / base_c)});

        // Memory: total decode-stage traffic, normalized to FuseKNA.
        const double base_m = fusekna.decode.traffic.total();
        mem.addRow({m.name, fmt(1.0),
                    fmt(fact.decode.traffic.total() / base_m),
                    fmt(spatten.decode.traffic.total() / base_m),
                    fmt(energon.decode.traffic.total() / base_m),
                    fmt(bitwave.decode.traffic.total() / base_m),
                    fmt(rm.decode.traffic.total() / base_m)});
    }

    std::cout << "\nNormalized computation (prefill, lower is better):\n";
    comp.print(std::cout);
    std::cout << "\nNormalized memory access (decoding, lower is better):\n";
    mem.print(std::cout);
    std::cout << "\nPaper reference: MCBP reduces computation up to 72.4% "
                 "vs the value-level baseline and memory access 75.8% on "
                 "average.\n";
    return 0;
}
