/**
 * @file
 * Fig 17: normalized computation (prefill stage) and normalized memory
 * access (decoding stage) of LLM inference across accelerators and the
 * five models.
 *
 * Paper shape: SOFA (value-level, attention-only) is the computation
 * baseline; Bitwave improves ~32%, FuseKNA ~49%, MCBP up to ~72.4%.
 * For memory, FuseKNA (value RLE) is the baseline and MCBP averages
 * ~75.8% reduction.
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Fig 17: normalized prefill computation and decode "
                  "memory access across accelerators");

    const model::Workload task = model::findTask("Wikilingua");

    // One fleet, one shared profile cache, every design on equal data.
    // Results are indexed by spec order, like fig23 — not by display
    // name, which would couple the bench to the name() heuristics.
    engine::Registry registry;
    enum { kSofa, kSpatten, kFact, kBitwave, kFusekna, kEnergon, kMcbp };
    auto fleet = registry.fleet({"sofa", "spatten", "fact", "bitwave",
                                 "fusekna", "energon", "mcbp"});
    // Profile the whole working set on all cores before the serial
    // figure loop (bit-identical stats either way).
    registry.warmFleet(fleet, model::modelZoo(), {task});

    Table comp({"Model", "SOFA", "Spatten", "FACT", "Bitwave", "FuseKNA",
                "MCBP"});
    Table mem({"Model", "FuseKNA", "FACT", "Spatten", "Energon", "Bitwave",
               "MCBP"});

    for (const auto &m : model::modelZoo()) {
        std::vector<accel::RunMetrics> runs;
        for (const auto &accel : fleet)
            runs.push_back(accel->run(m, task));

        // Computation: effective datapath ops in prefill, normalized to
        // SOFA (the paper's computation baseline).
        const double base_c = runs[kSofa].prefill.executedAdds;
        auto c = [&](std::size_t i) {
            return fmt(runs[i].prefill.executedAdds / base_c);
        };
        comp.addRow({m.name, fmt(1.0), c(kSpatten), c(kFact),
                     c(kBitwave), c(kFusekna), c(kMcbp)});

        // Memory: total decode-stage traffic, normalized to FuseKNA.
        const double base_m = runs[kFusekna].decode.traffic.total();
        auto d = [&](std::size_t i) {
            return fmt(runs[i].decode.traffic.total() / base_m);
        };
        mem.addRow({m.name, fmt(1.0), d(kFact), d(kSpatten),
                    d(kEnergon), d(kBitwave), d(kMcbp)});
    }

    std::cout << "\nNormalized computation (prefill, lower is better):\n";
    comp.print(std::cout);
    std::cout << "\nNormalized memory access (decoding, lower is better):\n";
    mem.print(std::cout);
    std::cout << "\nPaper reference: MCBP reduces computation up to 72.4% "
                 "vs the value-level baseline and memory access 75.8% on "
                 "average.\n";

    // Where the cycles live, per layer segment: the execution plan's
    // decomposition (Accelerator::plan) sliced into quarters of the
    // decoder stack — the unit a pipeline stage would own. The decode
    // weight-stream vs compute split is the quantity pp= (per-stage
    // HBM) and continuous batching (shared stream) both exploit.
    bench::banner("Plan decomposition: decode weight stream vs compute "
                  "per quarter of the stack (Llama7B, Wikilingua)");
    {
        const model::LlmConfig &m7 = model::findModel("Llama7B");
        Table seg({"Accel", "Segment", "Decode cycles",
                   "Weight stream", "Linear work", "Weight bytes"});
        for (std::size_t idx : {std::size_t(kMcbp), std::size_t(kSofa)}) {
            const accel::ExecutionPlan plan =
                fleet[idx]->plan(m7, task);
            const std::size_t quarter = plan.modelLayers / 4;
            for (std::size_t q = 0; q < 4; ++q) {
                const accel::PlanSegment s =
                    plan.slice(q * quarter, quarter);
                seg.addRow({fleet[idx]->name(), s.label,
                            fmt(s.decode.cycles, 0),
                            fmt(s.decode.weightStreamCycles, 0),
                            fmt(s.decode.linearWorkCycles, 0),
                            fmt(s.decode.traffic.weightBytes, 0)});
            }
        }
        seg.print(std::cout);
        std::cout << "Homogeneous stacks decompose uniformly — each "
                     "quarter carries 1/4 of the stream and compute — "
                     "which is exactly what lets pp= stages divide "
                     "layer segments instead of rescaling whole runs.\n";
    }
    return 0;
}
