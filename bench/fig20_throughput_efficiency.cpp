/**
 * @file
 * Fig 20: (a) throughput gain and (b) energy-efficiency gain of MCBP
 * (standard/aggressive, 148 ganged processors as in section 5.3) vs the
 * A100 at batch 8 and 128; (c) the bit-shift overhead profile.
 *
 * Paper shape: B=128 gives the GPU ~2.1x over B=8; MCBP standard /
 * aggressive average 8.72x / 9.43x speedup and 29.2x / 31.1x efficiency.
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"

using namespace mcbp;

int
main(int argc, char **argv)
{
    // Reject a bad --json path before running the sweeps.
    (void)bench::validatedJsonPathFromArgs(argc, argv);
    bench::JsonRecords json("fig20_throughput_efficiency");
    bench::banner("Fig 20(a)(b): MCBP (148 processors) vs A100");

    // The paper averages across its 26 benchmarks; use one task of each
    // kind (prompt-heavy, balanced, decode-heavy) as the mix.
    const std::vector<model::Workload> tasks = {
        model::findTask("Dolly"), model::findTask("Wikilingua"),
        model::findTask("MBPP")};
    engine::Registry registry;
    auto gpu = registry.make("a100");
    auto mcbp_s = registry.make("mcbp:procs=148");
    auto mcbp_a = registry.make("mcbp-aggressive:procs=148");

    Table t({"Model", "GPU B=128 vs B=8", "MCBP(S) speedup",
             "MCBP(A) speedup", "MCBP(S) eff. gain", "MCBP(A) eff. gain"});
    double sp_s = 0, sp_a = 0, ef_s = 0, ef_a = 0, batch_gain = 0;
    for (const auto &m : model::modelZoo()) {
        double speed_s = 0, speed_a = 0, eff_s = 0, eff_a = 0,
               batch_tput_gain = 0;
        for (const model::Workload &task : tasks) {
            model::Workload b8 = task;
            b8.batch = 8;
            model::Workload b128 = task;
            b128.batch = 128;
            accel::RunMetrics g8 = gpu->run(m, b8);
            accel::RunMetrics g128 = gpu->run(m, b128);
            accel::RunMetrics s = mcbp_s->run(m, b8);
            accel::RunMetrics a = mcbp_a->run(m, b8);
            // B=128 carries 16x the tokens of B=8.
            batch_tput_gain += (g8.seconds() * 16.0) / g128.seconds();
            speed_s += accel::speedupVs(s, g8);
            speed_a += accel::speedupVs(a, g8);
            eff_s += s.gopsPerWatt() / g8.gopsPerWatt();
            eff_a += a.gopsPerWatt() / g8.gopsPerWatt();
        }
        const double nt = static_cast<double>(tasks.size());
        speed_s /= nt;
        speed_a /= nt;
        eff_s /= nt;
        eff_a /= nt;
        batch_tput_gain /= nt;
        sp_s += speed_s;
        sp_a += speed_a;
        ef_s += eff_s;
        ef_a += eff_a;
        batch_gain += batch_tput_gain;
        t.addRow({m.name, fmtX(batch_tput_gain), fmtX(speed_s),
                  fmtX(speed_a), fmtX(eff_s), fmtX(eff_a)});
        json.begin()
            .field("model", m.name)
            .field("gpu_b128_vs_b8", batch_tput_gain)
            .field("mcbp_s_speedup", speed_s)
            .field("mcbp_a_speedup", speed_a)
            .field("mcbp_s_eff_gain", eff_s)
            .field("mcbp_a_eff_gain", eff_a);
    }
    const double n = static_cast<double>(model::modelZoo().size());
    t.addRow({"Mean", fmtX(batch_gain / n), fmtX(sp_s / n),
              fmtX(sp_a / n), fmtX(ef_s / n), fmtX(ef_a / n)});
    t.print(std::cout);
    std::cout << "Paper reference: GPU B=128 ~2.1x over B=8; MCBP "
                 "standard/aggressive 8.72x/9.43x speedup and "
                 "29.2x/31.1x efficiency.\n";

    bench::banner("Fig 20(c): bit-shift overhead vs value-level baseline "
                  "(Llama7B)");
    {
        const model::LlmConfig &m = model::findModel("Llama7B");
        auto base = registry.make("mcbp-baseline");
        auto full = registry.make("mcbp");
        Table t2({"Task", "Norm latency (value)", "Norm latency (MCBP)",
                  "Shift share of MCBP compute"});
        for (const char *name : {"Dolly", "Wikilingua"}) {
            const model::Workload &w = model::findTask(name);
            accel::RunMetrics rb = base->run(m, w);
            accel::RunMetrics rf = full->run(m, w);
            // Shift-accumulate steering is ~15% of BRCR adds by
            // construction (see the energy model wiring).
            t2.addRow({name, fmt(1.0),
                       fmt(rf.totalCycles() / rb.totalCycles()),
                       fmtPct(0.15)});
            json.begin()
                .field("model", m.name)
                .field("task", name)
                .field("norm_latency_mcbp",
                       rf.totalCycles() / rb.totalCycles())
                .field("shift_share", 0.15);
        }
        t2.print(std::cout);
        std::cout << "Paper reference: ~17% bit-shift overhead, but ~3x "
                     "net latency reduction over value-level execution.\n";
    }
    json.writeIfRequested(argc, argv);
    return 0;
}
