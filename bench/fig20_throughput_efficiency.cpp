/**
 * @file
 * Fig 20: (a) throughput gain and (b) energy-efficiency gain of MCBP
 * (standard/aggressive, 148 ganged processors as in section 5.3) vs the
 * A100 at batch 8 and 128; (c) the bit-shift overhead profile.
 *
 * Paper shape: B=128 gives the GPU ~2.1x over B=8; MCBP standard /
 * aggressive average 8.72x / 9.43x speedup and 29.2x / 31.1x efficiency.
 */
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/health.hpp"
#include "engine/pipeline.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "sim/fault_model.hpp"

using namespace mcbp;

namespace {

/** Requests whose first admission lands inside the horizon. */
std::size_t
admittedBy(const engine::ServingReport &r, double horizonSeconds)
{
    std::size_t n = 0;
    for (const engine::RequestMetrics &m : r.requests)
        if (m.admissionSeconds <= horizonSeconds)
            ++n;
    return n;
}

/**
 * Fig 20(d): admitted throughput per GB of KV budget — full-footprint
 * reservation vs block paging with preempt-and-recompute, on an HBM
 * sweep. Returns false (a CI failure) if paging ever admits fewer
 * requests than reservation at equal HBM, or never strictly more.
 */
bool
kvPolicySweep(engine::Registry &registry, bench::JsonRecords &json)
{
    bench::banner("Fig 20(d): KV admission policy vs HBM budget "
                  "(MCBP, 148 processors, Llama7B/MBPP)");
    model::TraceConfig tc;
    tc.model = "Llama7B";
    tc.task = "MBPP";
    tc.requests = 40;
    tc.arrivalsPerSecond = 8.0;
    tc.seed = 5;
    const std::vector<model::Request> trace = model::synthesizeTrace(tc);
    double horizon = 0.0;
    for (const model::Request &r : trace)
        horizon = std::max(horizon, r.arrivalSeconds);

    auto accel = registry.make("mcbp:procs=148");
    engine::ServingOptions base;
    base.maxBatch = 32;
    const engine::ServingReport unbounded =
        engine::ServingSimulator(*accel, base).simulate(trace);

    Table t({"KV budget [GB]", "Policy", "Admitted by last arrival",
             "tok/s", "tok/s/GB", "p99 queue [s]", "p99 TTFT [s]",
             "Preemptions", "Recomputed tokens", "Block fill"});
    // No point may dip below the largest single request (it could
    // never be admitted under either policy); floor the sweep just
    // above the block-rounded worst case.
    engine::KvOptions quant;
    quant.policy = engine::KvPolicy::Paged;
    quant.blockTokens = base.kvBlockTokens;
    double max_footprint = 0.0;
    const double per_token = static_cast<double>(
        model::findModel(tc.model).kvBytesPerToken());
    for (const model::Request &r : trace)
        max_footprint = std::max(
            max_footprint, engine::kvFootprintBytes(
                               quant, per_token, r.promptLen,
                               r.decodeLen));

    bool ge_everywhere = true;
    bool gt_somewhere = false;
    for (double frac : {0.15, 0.3, 0.6, 1.2}) {
        const double budget = std::max(unbounded.kvPeakBytes * frac,
                                       1.05 * max_footprint);
        std::size_t admitted[2] = {0, 0};
        for (engine::KvPolicy policy : engine::allKvPolicies()) {
            engine::ServingOptions opts = base;
            opts.kvCapacityBytes = budget;
            opts.kvPolicy = policy;
            const engine::ServingReport r =
                engine::ServingSimulator(*accel, opts).simulate(trace);
            const std::size_t n = admittedBy(r, horizon);
            admitted[policy == engine::KvPolicy::Paged ? 1 : 0] = n;
            t.addRow({fmt(budget / 1e9, 2), r.kvPolicy,
                      std::to_string(n), fmt(r.tokensPerSecond, 0),
                      fmt(r.tokensPerSecond / (budget / 1e9), 0),
                      fmt(r.p99QueueSeconds, 3),
                      fmt(r.p99FirstTokenSeconds, 3),
                      std::to_string(r.preemptions),
                      std::to_string(r.recomputedTokens),
                      fmtPct(r.kvBlockUtilization)});
            // Shared serving schema (bench_util.hpp) + sweep context.
            bench::appendServingFields(
                json.begin()
                    .field("section", "kv_policy_sweep")
                    .field("kv_budget_bytes", budget)
                    .field("admitted_by_last_arrival",
                           static_cast<double>(n))
                    .field("tokens_per_s_per_gb",
                           r.tokensPerSecond / (budget / 1e9)),
                r);
        }
        ge_everywhere = ge_everywhere && admitted[1] >= admitted[0];
        gt_somewhere = gt_somewhere || admitted[1] > admitted[0];
    }
    t.print(std::cout);
    std::cout << "Paging admits against current occupancy instead of "
                 "the full (prompt+decode) footprint, so the same HBM "
                 "admits more of the trace sooner; preempt-and-"
                 "recompute pays the difference back in recompute "
                 "prefills, visible in the preemption columns.\n";
    if (!(ge_everywhere && gt_somewhere))
        std::cerr << "FAIL: paged admission did not dominate "
                     "reservation across the HBM sweep\n";
    return ge_everywhere && gt_somewhere;
}

/**
 * Fig 20(e): pipeline-parallel prefill throughput. Splits the layer
 * stack across pp= stages and micro-batches the prefill (mb=), on the
 * paper's 148-processor MCBP point. Two CI gates ride on the return
 * value: (1) a pp=1 spec must be bit-identical to the bare design,
 * and (2) micro-batched pp=4 prefill (mb>=8) must beat unbatched
 * pp=4,mb=1 — the fill/drain bubble must actually shrink.
 */
bool
ppSweep(engine::Registry &registry, bench::JsonRecords &json)
{
    bench::banner("Fig 20(e): pipeline-parallel prefill "
                  "(MCBP, 148 processors, Llama7B/Wikilingua)");
    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &task = model::findTask("Wikilingua");

    auto bare = registry.make("mcbp:procs=148");
    const accel::RunMetrics base = bare->run(m, task);

    // Gate 1: pp=1 parity, bit for bit.
    auto pp1 = registry.make("mcbp:procs=148,pp=1");
    const accel::RunMetrics r1 = pp1->run(m, task);
    const bool parity = r1.prefill.cycles == base.prefill.cycles &&
                        r1.decode.cycles == base.decode.cycles &&
                        r1.prefill.energy.totalPj() ==
                            base.prefill.energy.totalPj() &&
                        r1.accelerator == base.accelerator;
    if (!parity)
        std::cerr << "FAIL: pp=1 diverges from the bare design\n";

    Table t({"pp", "mb", "Prefill speedup", "Bubble frac",
             "Decode speedup", "Fleet J / bare J"});
    double pp4_mb1 = 0.0, pp4_mb8 = 0.0;
    for (std::size_t pp : {2u, 4u, 8u}) {
        for (std::size_t mb : {1u, 8u, 32u}) {
            auto accel = registry.make(
                "mcbp:procs=148,pp=" + std::to_string(pp) +
                (mb > 1 ? ",mb=" + std::to_string(mb) : ""));
            const accel::RunMetrics rm = accel->run(m, task);
            const auto *pipe =
                dynamic_cast<const engine::PipelineAccelerator *>(
                    accel.get());
            const double bubble =
                pipe ? pipe->prefillTiming(m, task).bubbleFraction
                     : 0.0;
            if (pp == 4 && mb == 1)
                pp4_mb1 = rm.prefill.cycles;
            if (pp == 4 && mb == 8)
                pp4_mb8 = rm.prefill.cycles;
            t.addRow({std::to_string(pp), std::to_string(mb),
                      fmtX(base.prefill.cycles / rm.prefill.cycles),
                      fmtPct(bubble),
                      fmtX(base.decode.cycles / rm.decode.cycles),
                      fmt(rm.joules() / base.joules())});
            json.begin()
                .field("section", "pp_sweep")
                .field("pp", static_cast<double>(pp))
                .field("mb", static_cast<double>(mb))
                .field("prefill_cycles", rm.prefill.cycles)
                .field("prefill_speedup",
                       base.prefill.cycles / rm.prefill.cycles)
                .field("bubble_fraction", bubble)
                .field("decode_speedup",
                       base.decode.cycles / rm.decode.cycles)
                .field("joules_vs_bare", rm.joules() / base.joules());
        }
    }
    t.print(std::cout);
    std::cout << "Micro-batching fills the pipeline: mb=1 serializes "
                 "the stages (pure bubble, no prefill gain), larger "
                 "mb approaches the 1/pp bound. Decode gains come "
                 "from per-stage weight streams, not micro-batching "
                 "(token-serial).\n";

    // Gate 2: the bubble gate.
    const bool bubble_ok = pp4_mb8 > 0.0 && pp4_mb8 < pp4_mb1;
    if (!bubble_ok)
        std::cerr << "FAIL: pp=4,mb=8 prefill did not beat pp=4,mb=1\n";
    return parity && bubble_ok;
}

/**
 * Fig 20(f): availability vs per-chip MTBF — transient chip failures
 * with retry/failover on the paper's 148-processor MCBP point run as
 * a tp=2 group that fails over to its degraded (tp=1) topology. Two
 * CI gates ride on the return value: (1) an armed-but-inert fault
 * model (astronomical MTBF, so the generated timeline is empty) must
 * reproduce the zero-fault run bit for bit, and (2) goodput under
 * faults must never exceed the healthy throughput, while at least one
 * sweep point actually kills and retries work.
 */
bool
availabilitySweep(engine::Registry &registry, bench::JsonRecords &json)
{
    bench::banner("Fig 20(f): availability vs chip MTBF "
                  "(MCBP, 148 processors, tp=2, Llama7B/MBPP)");
    model::TraceConfig tc;
    tc.model = "Llama7B";
    tc.task = "MBPP";
    tc.requests = 32;
    tc.arrivalsPerSecond = 10.0;
    tc.seed = 11;
    const std::vector<model::Request> trace = model::synthesizeTrace(tc);

    const std::string spec = "mcbp:procs=148,tp=2";
    auto accel = registry.make(spec);
    auto degraded = registry.make(engine::degradedSpec(spec));
    engine::ServingOptions base;
    base.maxBatch = 16;
    const engine::ServingReport healthy =
        engine::ServingSimulator(*accel, base).simulate(trace);

    // Gate 1: armed but inert. MTBF is astronomically larger than the
    // sampling horizon, so the timeline is empty — but the fault
    // machinery is fully engaged (deferred prefill charging, fault
    // window bounds, retry bookkeeping). The report must be the
    // zero-fault run bit for bit.
    engine::ServingOptions inert = base;
    inert.faults.mtbfSeconds = 1e9;
    inert.faults.horizonSeconds = 1e-6;
    inert.degradedAccel = degraded.get();
    const engine::ServingReport armed =
        engine::ServingSimulator(*accel, inert).simulate(trace);
    const bool parity =
        armed.makespanSeconds == healthy.makespanSeconds &&
        armed.busySeconds == healthy.busySeconds &&
        armed.tokensPerSecond == healthy.tokensPerSecond &&
        armed.joulesPerToken == healthy.joulesPerToken &&
        armed.p99LatencySeconds == healthy.p99LatencySeconds &&
        armed.admissionOrder == healthy.admissionOrder &&
        armed.faultEvents == 0 &&
        armed.goodputTokensPerSecond == armed.tokensPerSecond;
    if (!parity)
        std::cerr << "FAIL: armed-but-inert fault model diverges from "
                     "the zero-fault run\n";

    Table t({"MTBF [s]", "Fault events", "Killed", "Retries",
             "Degraded [s]", "Outage [s]", "tok/s", "Goodput tok/s",
             "Availability", "SLO attainment"});
    bool le_everywhere = true;
    bool retried_somewhere = false;
    for (double mtbf : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        engine::ServingOptions opts = base;
        opts.faults.mtbfSeconds = mtbf;
        opts.faults.repairSeconds = 0.2;
        opts.faults.permanentFraction = 0.0;
        opts.faults.horizonSeconds = 2.0 * healthy.makespanSeconds;
        opts.degradedAccel = degraded.get();
        // Availability sweep, not an admission-control one: retry
        // until served, no deadline, so every point serves the whole
        // trace and goodput isolates the fault-time cost.
        opts.retry.maxRetries = 100;
        opts.retry.deadlineSeconds = 0.0;
        const engine::ServingReport r =
            engine::ServingSimulator(*accel, opts).simulate(trace);
        const double avail =
            r.goodputTokensPerSecond / healthy.tokensPerSecond;
        t.addRow({fmt(mtbf, 1), std::to_string(r.faultEvents),
                  std::to_string(r.killedInFlight),
                  std::to_string(r.retriesScheduled),
                  fmt(r.degradedSeconds, 3), fmt(r.outageSeconds, 3),
                  fmt(r.tokensPerSecond, 0),
                  fmt(r.goodputTokensPerSecond, 0), fmtPct(avail),
                  fmtPct(r.sloAttainment)});
        bench::appendServingFields(
            json.begin()
                .field("section", "availability_sweep")
                .field("mtbf_s", mtbf)
                .field("healthy_tok_s", healthy.tokensPerSecond)
                .field("availability", avail),
            r);
        le_everywhere =
            le_everywhere &&
            r.goodputTokensPerSecond <=
                healthy.tokensPerSecond * (1.0 + 1e-12);
        retried_somewhere =
            retried_somewhere || r.retriesScheduled > 0;
    }
    t.print(std::cout);
    std::cout << "Failures kill in-flight work (lost tokens recompute "
                 "on retry) and the tp=2 group re-forms at tp=1 while "
                 "a chip is down, so goodput degrades smoothly toward "
                 "the MTBF floor instead of cliffing.\n";
    if (!le_everywhere)
        std::cerr << "FAIL: faulted goodput exceeded the healthy "
                     "throughput somewhere in the MTBF sweep\n";
    if (!retried_somewhere)
        std::cerr << "FAIL: no sweep point exercised the retry path\n";
    return parity && le_everywhere && retried_somewhere;
}

/**
 * Fig 20(g): replica fleets vs one big tensor group — a fixed budget
 * of 32 chips split dp= ways (dp x tp = 32) behind the fleet router,
 * on a bursty arrival trace. Two CI gates ride on the return value:
 * (1) the dp=1 fleet spec must reproduce the flat tp=32 serving
 * report bit for bit (the router's identity contract), and (2) some
 * dp>1 split must improve p99 time-to-first-token over dp=1 — the
 * burst drains across independent replica queues instead of one.
 */
bool
dpSweep(engine::Registry &registry, bench::JsonRecords &json)
{
    bench::banner("Fig 20(g): dp= replica splits of 32 chips "
                  "(MCBP, 148 processors, Llama7B/MBPP, bursty)");
    model::TraceConfig tc;
    tc.model = "Llama7B";
    tc.task = "MBPP";
    tc.requests = 48;
    tc.arrivalsPerSecond = 200.0; // bursty: arrivals outrun one engine
    tc.seed = 17;
    const std::vector<model::Request> trace = model::synthesizeTrace(tc);

    engine::ServingOptions base;
    base.maxBatch = 8; // per replica engine

    // Gate 1: dp=1 is the flat path, bit for bit.
    const engine::ServingReport flat =
        engine::ServingSimulator(*registry.make("mcbp:procs=148,tp=32"),
                                 base)
            .simulate(trace);
    const engine::ServingReport dp1 =
        engine::ServingSimulator(
            *registry.make("mcbp:procs=148,tp=32,dp=1"), base)
            .simulate(trace);
    const bool parity =
        dp1.accelerator == flat.accelerator &&
        dp1.makespanSeconds == flat.makespanSeconds &&
        dp1.busySeconds == flat.busySeconds &&
        dp1.tokensPerSecond == flat.tokensPerSecond &&
        dp1.joulesPerToken == flat.joulesPerToken &&
        dp1.p99LatencySeconds == flat.p99LatencySeconds &&
        dp1.p99FirstTokenSeconds == flat.p99FirstTokenSeconds &&
        dp1.admissionOrder == flat.admissionOrder;
    if (!parity)
        std::cerr << "FAIL: dp=1 fleet diverges from the flat tp=32 "
                     "serving report\n";

    Table t({"dp", "tp", "p99 TTFT [s]", "p99 latency [s]", "tok/s",
             "J/token", "Mean batch", "Makespan [s]"});
    double dp1_ttft = 0.0;
    bool better_somewhere = false;
    for (std::size_t dp : {1u, 2u, 4u, 8u}) {
        const std::size_t tp = 32 / dp;
        const std::string spec =
            "mcbp:procs=148,tp=" + std::to_string(tp) +
            (dp > 1 ? ",dp=" + std::to_string(dp) : ",dp=1");
        const engine::ServingReport r =
            engine::ServingSimulator(*registry.make(spec), base)
                .simulate(trace);
        if (dp == 1)
            dp1_ttft = r.p99FirstTokenSeconds;
        else
            better_somewhere = better_somewhere ||
                               r.p99FirstTokenSeconds < dp1_ttft;
        t.addRow({std::to_string(dp), std::to_string(tp),
                  fmt(r.p99FirstTokenSeconds, 4),
                  fmt(r.p99LatencySeconds, 4), fmt(r.tokensPerSecond, 0),
                  fmt(r.joulesPerToken, 4), fmt(r.meanBatchOccupancy, 2),
                  fmt(r.makespanSeconds, 4)});
        bench::appendServingFields(
            json.begin()
                .field("section", "dp_sweep")
                .field("dp", static_cast<double>(dp))
                .field("tp", static_cast<double>(tp)),
            r);
    }
    t.print(std::cout);
    std::cout << "A burst queues behind one engine however wide its "
                 "tensor group; splitting the same chips into replicas "
                 "multiplies admission slots (and sheds the flat "
                 "ring's 2(N-1) hop floor), so first tokens come back "
                 "sooner at the cost of per-request decode speed.\n";
    if (!better_somewhere)
        std::cerr << "FAIL: no dp>1 split improved p99 TTFT over the "
                     "flat tp=32 engine\n";
    return parity && better_somewhere;
}

} // namespace

int
main(int argc, char **argv)
{
    // Reject a bad --json path before running the sweeps.
    (void)bench::validatedJsonPathFromArgs(argc, argv);
    bench::JsonRecords json("fig20_throughput_efficiency");
    bench::banner("Fig 20(a)(b): MCBP (148 processors) vs A100");

    // The paper averages across its 26 benchmarks; use one task of each
    // kind (prompt-heavy, balanced, decode-heavy) as the mix.
    const std::vector<model::Workload> tasks = {
        model::findTask("Dolly"), model::findTask("Wikilingua"),
        model::findTask("MBPP")};
    engine::Registry registry;
    auto gpu = registry.make("a100");
    auto mcbp_s = registry.make("mcbp:procs=148");
    auto mcbp_a = registry.make("mcbp-aggressive:procs=148");

    Table t({"Model", "GPU B=128 vs B=8", "MCBP(S) speedup",
             "MCBP(A) speedup", "MCBP(S) eff. gain", "MCBP(A) eff. gain"});
    double sp_s = 0, sp_a = 0, ef_s = 0, ef_a = 0, batch_gain = 0;
    for (const auto &m : model::modelZoo()) {
        double speed_s = 0, speed_a = 0, eff_s = 0, eff_a = 0,
               batch_tput_gain = 0;
        for (const model::Workload &task : tasks) {
            model::Workload b8 = task;
            b8.batch = 8;
            model::Workload b128 = task;
            b128.batch = 128;
            accel::RunMetrics g8 = gpu->run(m, b8);
            accel::RunMetrics g128 = gpu->run(m, b128);
            accel::RunMetrics s = mcbp_s->run(m, b8);
            accel::RunMetrics a = mcbp_a->run(m, b8);
            // B=128 carries 16x the tokens of B=8.
            batch_tput_gain += (g8.seconds() * 16.0) / g128.seconds();
            speed_s += accel::speedupVs(s, g8);
            speed_a += accel::speedupVs(a, g8);
            eff_s += s.gopsPerWatt() / g8.gopsPerWatt();
            eff_a += a.gopsPerWatt() / g8.gopsPerWatt();
        }
        const double nt = static_cast<double>(tasks.size());
        speed_s /= nt;
        speed_a /= nt;
        eff_s /= nt;
        eff_a /= nt;
        batch_tput_gain /= nt;
        sp_s += speed_s;
        sp_a += speed_a;
        ef_s += eff_s;
        ef_a += eff_a;
        batch_gain += batch_tput_gain;
        t.addRow({m.name, fmtX(batch_tput_gain), fmtX(speed_s),
                  fmtX(speed_a), fmtX(eff_s), fmtX(eff_a)});
        json.begin()
            .field("model", m.name)
            .field("gpu_b128_vs_b8", batch_tput_gain)
            .field("mcbp_s_speedup", speed_s)
            .field("mcbp_a_speedup", speed_a)
            .field("mcbp_s_eff_gain", eff_s)
            .field("mcbp_a_eff_gain", eff_a);
    }
    const double n = static_cast<double>(model::modelZoo().size());
    t.addRow({"Mean", fmtX(batch_gain / n), fmtX(sp_s / n),
              fmtX(sp_a / n), fmtX(ef_s / n), fmtX(ef_a / n)});
    t.print(std::cout);
    std::cout << "Paper reference: GPU B=128 ~2.1x over B=8; MCBP "
                 "standard/aggressive 8.72x/9.43x speedup and "
                 "29.2x/31.1x efficiency.\n";

    bench::banner("Fig 20(c): bit-shift overhead vs value-level baseline "
                  "(Llama7B)");
    {
        const model::LlmConfig &m = model::findModel("Llama7B");
        auto base = registry.make("mcbp-baseline");
        auto full = registry.make("mcbp");
        Table t2({"Task", "Norm latency (value)", "Norm latency (MCBP)",
                  "Shift share of MCBP compute"});
        for (const char *name : {"Dolly", "Wikilingua"}) {
            const model::Workload &w = model::findTask(name);
            accel::RunMetrics rb = base->run(m, w);
            accel::RunMetrics rf = full->run(m, w);
            // Shift-accumulate steering is ~15% of BRCR adds by
            // construction (see the energy model wiring).
            t2.addRow({name, fmt(1.0),
                       fmt(rf.totalCycles() / rb.totalCycles()),
                       fmtPct(0.15)});
            json.begin()
                .field("model", m.name)
                .field("task", name)
                .field("norm_latency_mcbp",
                       rf.totalCycles() / rb.totalCycles())
                .field("shift_share", 0.15);
        }
        t2.print(std::cout);
        std::cout << "Paper reference: ~17% bit-shift overhead, but ~3x "
                     "net latency reduction over value-level execution.\n";
    }
    // Fig 20(d): the KV-paging admission win, gated — CI fails if
    // reservation ever admits more than paging at equal HBM.
    const bool kv_ok = kvPolicySweep(registry, json);
    // Fig 20(e): the pipeline sweep, gated — CI fails unless pp=1 is
    // bit-identical to the bare design and micro-batched pp=4 prefill
    // beats the unbatched pipeline (the bubble gate).
    const bool pp_ok = ppSweep(registry, json);
    // Fig 20(f): the availability sweep, gated — CI fails unless an
    // armed-but-inert fault model is bit-identical to the zero-fault
    // run, faulted goodput never beats healthy throughput, and at
    // least one MTBF point exercises the kill/retry path.
    const bool avail_ok = availabilitySweep(registry, json);
    // Fig 20(g): the replica-split sweep, gated — CI fails unless dp=1
    // reproduces the flat engine bit for bit and some dp>1 split of
    // the same 32 chips improves p99 TTFT on the bursty trace.
    const bool dp_ok = dpSweep(registry, json);

    json.writeIfRequested(argc, argv);
    return (kv_ok && pp_ok && avail_ok && dp_ok) ? 0 : 1;
}
