/**
 * @file
 * Fig 21: throughput and efficiency gain breakdown — software-only gain
 * (MCBP's algorithms deployed on the GPU) vs hardware gain (the same
 * algorithms on the MCBP fabric), technique by technique.
 *
 * Paper shape: software-only BRCR/BSTC/BGPP yield just 1.2x/1.44x/1.23x
 * on the GPU; with the dedicated engines they contribute
 * 2.88x/2.19x/1.48x (throughput) and 4.24x/2.98x/2.44x (efficiency).
 */
#include <iostream>

#include "accel/gpu_model.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Fig 21: software vs hardware gain breakdown (Llama7B)");

    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &task = model::findTask("Wikilingua");

    // --- Software-only ladder on the GPU ---------------------------------
    accel::GpuA100Model gpu_plain;
    accel::GpuA100Model gpu_r({}, {true, false, false});
    accel::GpuA100Model gpu_rc({}, {true, true, false});
    accel::GpuA100Model gpu_rcp({}, {true, true, true});
    const double t0 = gpu_plain.run(m, task).seconds();
    const double t1 = gpu_r.run(m, task).seconds();
    const double t2 = gpu_rc.run(m, task).seconds();
    const double t3 = gpu_rcp.run(m, task).seconds();

    // --- Hardware ladder: GPU -> MCBP[R] -> MCBP[RC] -> MCBP[RCP] --------
    // (the paper's convention: the +BRCR step includes moving from the
    // GPU onto the bit-grained fabric with its CAM engine, so the three
    // step multipliers compose to the full MCBP-vs-GPU gain.)
    accel::RunMetrics g0 = gpu_plain.run(m, task);
    auto hw = [&](bool r, bool c, bool p) {
        accel::McbpOptions o;
        o.enableBrcr = r;
        o.enableBstc = c;
        o.enableBgpp = p;
        o.processors = 148;
        return accel::McbpAccelerator(sim::defaultConfig(), o).run(m, task);
    };
    accel::RunMetrics h1 = hw(true, false, false);
    accel::RunMetrics h2 = hw(true, true, false);
    accel::RunMetrics h3 = hw(true, true, true);

    Table t({"Step", "GPU software gain", "MCBP hardware gain",
             "MCBP efficiency gain"});
    t.addRow({"+BRCR", fmtX(t0 / t1),
              fmtX(accel::speedupVs(h1, g0)),
              fmtX(h1.gopsPerWatt() / g0.gopsPerWatt())});
    t.addRow({"+BSTC", fmtX(t1 / t2),
              fmtX(h1.seconds() / h2.seconds()),
              fmtX(h2.gopsPerWatt() / h1.gopsPerWatt())});
    t.addRow({"+BGPP", fmtX(t2 / t3),
              fmtX(h2.seconds() / h3.seconds()),
              fmtX(h3.gopsPerWatt() / h2.gopsPerWatt())});
    t.addRow({"Cumulative", fmtX(t0 / t3),
              fmtX(accel::speedupVs(h3, g0)),
              fmtX(h3.gopsPerWatt() / g0.gopsPerWatt())});
    t.print(std::cout);
    std::cout << "\nPaper reference: software-only 1.2x/1.44x/1.23x; "
                 "hardware 2.88x/2.19x/1.48x (throughput) and "
                 "4.24x/2.98x/2.44x (efficiency).\n";
    return 0;
}
