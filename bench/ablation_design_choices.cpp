/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out (beyond the
 * paper's own figures):
 *
 *  1. Sign handling in BRCR: sign-split binary matching (default) vs the
 *     ternary {-1,0,+1} pattern variant (DESIGN.md 4.1) — repetition
 *     captured, additions and pattern-space cost.
 *  2. HBM data layout (Fig 13): bit-slice-first vs value-level layout for
 *     partial-plane fetches (the BGPP access pattern).
 *  3. Pipeline overlap (Fig 10): tile-level simulation of the
 *     load -> decode -> compute pipeline, measuring the utilization the
 *     paper quotes (~78%) and the gain over serial execution.
 */
#include <iostream>

#include "bench_util.hpp"
#include "brcr/brcr_engine.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "quant/gemm.hpp"
#include "model/llm_config.hpp"
#include "model/synthetic.hpp"
#include "sim/layer_sim.hpp"
#include "sim/layout.hpp"
#include "sim/tiling.hpp"

using namespace mcbp;

namespace {

void
signModeAblation()
{
    bench::banner("Ablation: BRCR sign handling — sign-split (binary "
                  "patterns) vs ternary patterns");
    Rng rng(2025);
    model::WeightProfile profile;
    profile.dynamicRange = 16.0;
    quant::QuantizedWeight qw = model::synthesizeQuantizedWeight(
        rng, 64, 2048, quant::BitWidth::Int8, profile);
    std::vector<std::int8_t> x(2048);
    for (auto &v : x)
        v = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.uniformInt(255)) - 127);

    Table t({"Variant", "Pattern space", "Total adds", "Merge adds",
             "CAM keys/group", "Exact"});
    for (std::size_t m : {3u, 4u, 5u}) {
        brcr::BrcrEngine engine({m, quant::BitWidth::Int8});
        auto ref = quant::gemvInt(qw.values, x);
        brcr::BrcrGemvResult split = engine.gemv(qw.values, x);
        brcr::BrcrGemvResult tern = engine.gemvTernary(qw.values, x);
        t.addRow({"split m=" + std::to_string(m),
                  std::to_string(1u << m),
                  std::to_string(split.ops.totalAdds()),
                  std::to_string(split.ops.mergeAdds),
                  std::to_string((1u << m) - 1),
                  split.y == ref ? "yes" : "NO"});
        std::size_t p3 = 1;
        for (std::size_t i = 0; i < m; ++i)
            p3 *= 3;
        t.addRow({"ternary m=" + std::to_string(m), std::to_string(p3),
                  std::to_string(tern.ops.totalAdds()),
                  std::to_string(tern.ops.mergeAdds),
                  std::to_string(p3 - 1),
                  tern.y == ref ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "Takeaway: both are exact; the ternary variant halves "
                 "the plane passes but pays a 3^m pattern space — the "
                 "sign-split keeps the CAM at 2^m keys, which is why the "
                 "paper's 4-bit CAM design implies binary matching.\n";
}

void
layoutAblation()
{
    bench::banner("Ablation (Fig 13): HBM layout for partial bit-plane "
                  "fetches");
    const sim::McbpConfig &cfg = sim::defaultConfig();
    Table t({"Fetch", "Bit-slice layout [MB]", "Value layout [MB]",
             "Traffic saving", "Row-act saving"});
    for (std::size_t planes : {1u, 2u, 4u, 8u}) {
        sim::LayoutCost bs =
            sim::bitSliceLayoutFetch(cfg, 4096, 4096, planes);
        sim::LayoutCost val =
            sim::valueLayoutFetch(cfg, 4096, 4096, planes);
        t.addRow({std::to_string(planes) + " plane(s)",
                  fmt(bs.bytesTouched / 1e6, 1),
                  fmt(val.bytesTouched / 1e6, 1),
                  fmtX(static_cast<double>(val.bytesTouched) /
                       static_cast<double>(bs.bytesTouched), 1),
                  fmtX(static_cast<double>(val.rowActivations) /
                       std::max<std::uint64_t>(1, bs.rowActivations),
                       1)});
    }
    t.print(std::cout);
    std::cout << "BGPP's early rounds fetch 1-2 planes: the bit-slice "
                 "layout is what makes those fetches cheap.\n";
}

void
pipelineUtilization()
{
    bench::banner("Ablation (Fig 10): tile pipeline utilization on a "
                  "Llama7B projection layer");
    const model::LlmConfig &m = model::findModel("Llama7B");
    const sim::McbpConfig &cfg = sim::defaultConfig();
    sim::TilePlan plan =
        planGemmTiling(cfg, m.hidden, m.hidden, 512, 1.25);

    // Per-tile costs: a TMxTK weight tile loads (TM*TK/CR) bytes,
    // decodes ~1.25 symbols/byte over 80 lanes, and computes
    // TM*TK*TN MACs at ~1.4 adds/MAC over the fabric.
    const double tile_bytes =
        static_cast<double>(plan.tileM) * plan.tileK / 1.25;
    sim::TileCosts tile;
    tile.loadCycles = tile_bytes / cfg.hbmBytesPerCycle() /
                      static_cast<double>(plan.gridN); // reused across N
    tile.decodeCycles = tile_bytes * 1.25 /
                        static_cast<double>(cfg.decoderLanes) /
                        static_cast<double>(plan.gridN);
    tile.computeCycles = static_cast<double>(plan.tileM) * plan.tileK *
                         plan.tileN * 1.4 / cfg.peakAddsPerCycle();

    sim::TilePipelineResult r =
        sim::simulateUniformTiles(tile, plan.totalTiles());
    Table t({"Metric", "Value"});
    t.addRow({"Tiles", std::to_string(r.tiles)});
    t.addRow({"Pipelined cycles", fmt(r.totalCycles, 0)});
    t.addRow({"Serial cycles", fmt(r.serialCycles, 0)});
    t.addRow({"Overlap gain", fmtX(r.overlapGain())});
    t.addRow({"Compute utilization", fmtPct(r.computeUtilization())});
    t.addRow({"HBM utilization", fmtPct(r.loadUtilization())});
    t.addRow({"Decoder utilization", fmtPct(r.decodeUtilization())});
    t.print(std::cout);
    std::cout << "Paper reference: MCBP's pipelined workflow reaches ~78% "
                 "average utilization (section 5.3).\n";
}

} // namespace

int
main()
{
    signModeAblation();
    layoutAblation();
    pipelineUtilization();
    return 0;
}
