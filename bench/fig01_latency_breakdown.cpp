/**
 * @file
 * Fig 1(a): end-to-end latency breakdown (GEMM / weight load / KV load /
 * others) for Llama7B on the A100 roofline model, batch 4, decode fixed
 * at 16 tokens, prompt length swept 1k - 128k.
 *
 * Paper shape to reproduce: weight loading dominates short prompts
 * (~52% at 1k); GEMM (prefill) and KV loading take over as the prompt
 * grows.
 */
#include <iostream>

#include "accel/gpu_model.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "model/llm_config.hpp"
#include "model/workload.hpp"

int
main()
{
    using namespace mcbp;
    bench::banner("Fig 1(a): Llama7B end-to-end latency breakdown on A100 "
                  "(batch 4, 16 decode tokens)");

    const model::LlmConfig &m = model::findModel("Llama7B");
    accel::GpuA100Model gpu;

    Table t({"Prompt", "GEMM", "Weight load", "KV load", "Others"});
    for (std::size_t s : {1024u, 2048u, 4096u, 8192u, 16384u, 32768u,
                          65536u, 131072u}) {
        // Per-sample latency view (decode weight traffic is not
        // amortized in the percentage accounting, matching the paper's
        // breakdown shape at short prompts).
        model::Workload w =
            model::withLengths(model::findTask("Wikitext2"), s, 16);
        w.batch = 1;
        accel::RunMetrics r = gpu.run(m, w);
        const double gemm = r.prefill.gemmCycles + r.decode.gemmCycles;
        const double wl =
            r.prefill.weightLoadCycles + r.decode.weightLoadCycles;
        const double kv = r.prefill.kvLoadCycles + r.decode.kvLoadCycles;
        const double other = std::max(
            0.0, r.totalCycles() - gemm - wl - kv);
        const double total = gemm + wl + kv + other;
        t.addRow({std::to_string(s / 1024) + "k",
                  fmtPct(gemm / total), fmtPct(wl / total),
                  fmtPct(kv / total), fmtPct(other / total)});
    }
    t.print(std::cout);
    std::cout << "\nPaper reference: at 1k prompt, weight load ~52.4% of "
                 "latency; GEMM and KV load dominate at long prompts.\n";
    return 0;
}
