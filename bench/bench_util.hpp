/**
 * @file
 * Shared helpers for the figure/table reproduction benches: section
 * banners and normalization utilities. Each bench binary prints the rows
 * or series of one paper table/figure (EXPERIMENTS.md records the
 * paper-vs-measured comparison).
 */
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace mcbp::bench {

/** Print a figure/table banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/** Normalize a series so its maximum is 1.0. */
inline std::vector<double>
normalizeToMax(const std::vector<double> &v)
{
    double mx = 0.0;
    for (double x : v)
        mx = std::max(mx, x);
    std::vector<double> out(v.size(), 0.0);
    if (mx > 0.0)
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = v[i] / mx;
    return out;
}

/** Normalize a series to its first element. */
inline std::vector<double>
normalizeToFirst(const std::vector<double> &v)
{
    std::vector<double> out(v.size(), 0.0);
    if (!v.empty() && v[0] > 0.0)
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = v[i] / v[0];
    return out;
}

} // namespace mcbp::bench
