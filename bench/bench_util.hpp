/**
 * @file
 * Shared helpers for the figure/table reproduction benches: section
 * banners, normalization utilities, and the machine-readable result
 * archive every bench/example shares. Each bench binary prints the rows
 * or series of one paper table/figure (EXPERIMENTS.md records the
 * paper-vs-measured comparison); passing `--json <path>` additionally
 * writes the same rows as JSON so CI can archive and diff them.
 */
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hpp"
#include "engine/serving.hpp"

namespace mcbp::bench {

/** Print a figure/table banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n";
}

/** Normalize a series so its maximum is 1.0. */
inline std::vector<double>
normalizeToMax(const std::vector<double> &v)
{
    double mx = 0.0;
    for (double x : v)
        mx = std::max(mx, x);
    std::vector<double> out(v.size(), 0.0);
    if (mx > 0.0)
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = v[i] / mx;
    return out;
}

/** Normalize a series to its first element. */
inline std::vector<double>
normalizeToFirst(const std::vector<double> &v)
{
    std::vector<double> out(v.size(), 0.0);
    if (!v.empty() && v[0] > 0.0)
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = v[i] / v[0];
    return out;
}

/** The `--json <path>` flag's value, or "" when absent. */
inline std::string
jsonPathFromArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            fatalIf(i + 1 >= argc, "--json needs a file path");
            return argv[i + 1];
        }
    }
    return "";
}

/**
 * Fail fast on a malformed `--json` flag: call at the top of main so
 * a missing or unwritable path aborts before the bench spends its
 * runtime, not after. Returns the path ("" when absent).
 */
inline std::string
validatedJsonPathFromArgs(int argc, char **argv)
{
    const std::string path = jsonPathFromArgs(argc, argv);
    if (!path.empty()) {
        std::ofstream probe(path, std::ios::app); // no truncation
        fatalIf(!probe, "cannot open '" + path + "' for writing");
    }
    return path;
}

/**
 * Machine-readable result archive: one bench = one JSON document of
 * flat records, the single schema every bench/example emits so CI can
 * collect serving/throughput results uniformly:
 *
 *   { "bench": "<name>",
 *     "records": [ {"key": <number|string>, ...}, ... ] }
 *
 * Typical use:
 * @code
 *   bench::JsonRecords json("serving");
 *   json.begin().field("accelerator", name).field("tok_s", tps);
 *   json.writeIfRequested(argc, argv);  // honors --json <path>
 * @endcode
 */
class JsonRecords
{
  public:
    explicit JsonRecords(std::string benchName)
        : bench_(std::move(benchName))
    {
    }

    /** Start a new record; subsequent field() calls populate it. */
    JsonRecords &
    begin()
    {
        records_.emplace_back();
        return *this;
    }

    JsonRecords &
    field(const std::string &key, const std::string &value)
    {
        append(key, quote(value));
        return *this;
    }

    JsonRecords &
    field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    JsonRecords &
    field(const std::string &key, double value)
    {
        if (!std::isfinite(value)) { // inf/nan are not legal JSON
            append(key, "null");
            return *this;
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.12g", value);
        append(key, buf);
        return *this;
    }

    /** Any integer type (avoids double-vs-size_t overload ambiguity
     *  for plain int arguments). */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    JsonRecords &
    field(const std::string &key, T value)
    {
        return field(key, static_cast<double>(value));
    }

    /** Render the whole document. */
    std::string
    toString() const
    {
        std::ostringstream os;
        os << "{\"bench\": " << quote(bench_) << ", \"records\": [";
        for (std::size_t r = 0; r < records_.size(); ++r) {
            os << (r == 0 ? "\n" : ",\n") << "  {";
            const auto &rec = records_[r];
            for (std::size_t f = 0; f < rec.size(); ++f)
                os << (f == 0 ? "" : ", ") << quote(rec[f].first)
                   << ": " << rec[f].second;
            os << "}";
        }
        os << "\n]}\n";
        return os.str();
    }

    /** Write the document to @p path. */
    void
    write(const std::string &path) const
    {
        std::ofstream out(path);
        fatalIf(!out, "cannot open '" + path + "' for writing");
        out << toString();
        fatalIf(!out.good(), "failed writing '" + path + "'");
    }

    /** Honor a `--json <path>` flag if the caller passed one. */
    void
    writeIfRequested(int argc, char **argv) const
    {
        const std::string path = jsonPathFromArgs(argc, argv);
        if (!path.empty()) {
            write(path);
            std::cout << "\n[json results written to " << path << "]\n";
        }
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (char ch : s) {
            const auto u = static_cast<unsigned char>(ch);
            if (ch == '"' || ch == '\\') {
                (out += '\\') += ch;
            } else if (u < 0x20) { // all control chars, per RFC 8259
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += ch;
            }
        }
        return out += '"';
    }

    void
    append(const std::string &key, std::string rendered)
    {
        fatalIf(records_.empty(), "field() before begin()");
        records_.back().emplace_back(key, std::move(rendered));
    }

    std::string bench_;
    std::vector<std::vector<std::pair<std::string, std::string>>>
        records_;
};

/**
 * Append the canonical ServingReport field set to the CURRENT record
 * (callers begin() a record and add their context fields — setting,
 * sweep point, budget — first). One schema for every bench/example
 * that archives a serving run, so the CI artifacts of fig20/fig23 and
 * example_serving all carry the same columns — including the paging
 * stats (kv_policy, preemptions, recomputed_tokens,
 * kv_block_utilization, kv_fragmentation_peak_bytes) they print as
 * text.
 */
inline JsonRecords &
appendServingFields(JsonRecords &json, const engine::ServingReport &r)
{
    return json.field("accelerator", r.accelerator)
        .field("scheduler", r.scheduler)
        .field("kv_policy", r.kvPolicy)
        .field("p50_latency_s", r.p50LatencySeconds)
        .field("p90_latency_s", r.p90LatencySeconds)
        .field("p99_latency_s", r.p99LatencySeconds)
        .field("mean_latency_s", r.meanLatencySeconds)
        .field("p50_queue_s", r.p50QueueSeconds)
        .field("p90_queue_s", r.p90QueueSeconds)
        .field("p99_queue_s", r.p99QueueSeconds)
        .field("p50_ttft_s", r.p50FirstTokenSeconds)
        .field("p90_ttft_s", r.p90FirstTokenSeconds)
        .field("p99_ttft_s", r.p99FirstTokenSeconds)
        .field("mean_tpot_s", r.meanTpotSeconds)
        .field("tokens_per_s", r.tokensPerSecond)
        .field("joules_per_token", r.joulesPerToken)
        .field("mean_batch", r.meanBatchOccupancy)
        .field("peak_batch", r.peakBatch)
        .field("kv_peak_bytes", r.kvPeakBytes)
        .field("kv_utilization", r.kvUtilization)
        .field("preemptions", static_cast<double>(r.preemptions))
        .field("recomputed_tokens",
               static_cast<double>(r.recomputedTokens))
        .field("kv_block_utilization", r.kvBlockUtilization)
        .field("kv_fragmentation_peak_bytes",
               r.kvFragmentationPeakBytes)
        .field("batching_speedup", r.batchingSpeedup())
        // Availability (fault injection; all zero on zero-fault runs).
        .field("goodput_tok_s", r.goodputTokensPerSecond)
        .field("slo_attainment", r.sloAttainment)
        .field("fault_events", static_cast<double>(r.faultEvents))
        .field("killed_in_flight",
               static_cast<double>(r.killedInFlight))
        .field("retries_scheduled",
               static_cast<double>(r.retriesScheduled))
        .field("dropped_requests",
               static_cast<double>(r.droppedRequests))
        .field("fault_lost_tokens",
               static_cast<double>(r.faultLostTokens))
        .field("fault_recompute_s", r.faultRecomputeSeconds)
        .field("degraded_s", r.degradedSeconds)
        .field("outage_s", r.outageSeconds)
        .field("degraded_fraction", r.degradedFraction)
        .field("no_completions", r.noCompletions ? 1.0 : 0.0);
}

} // namespace mcbp::bench
