/**
 * @file
 * Serving fast-path benchmark: wall-clock of the two layers a
 * million-request trace spends its time in, each gated on the
 * equivalence contract that makes the fast path safe to ship.
 *
 * Sections:
 *  1. Trace costing — the per-request pricing loop, serial
 *     (costingThreads = 1, cold plan cache) vs the parallel
 *     singleflight fan-out (costingThreads = 0, cold plan cache).
 *     The costed traces are verified bit-identical always; the >= 4x
 *     speedup gate binds only when the host grants >= 8 hardware
 *     threads (the fan-out cannot win on a 1-2 core runner).
 *  2. Decode-iteration coalescing — the same long-decode trace played
 *     through the event core per-token vs coalesced, under reserve
 *     and under a preempting paged pool. Scheduling decisions
 *     (admission order, preemption victims, completion order) must
 *     match verbatim, aggregates to 1e-9 relative, and the coalesced
 *     run must win >= 10x in decode loop passes (the algorithmic
 *     gate, host-independent) — wall-clock is reported alongside.
 *
 * Exit code 0 iff every enforced gate passes. `--json <path>`
 * archives the records (bench_util.hpp schema).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "engine/registry.hpp"
#include "engine/serving.hpp"
#include "model/request.hpp"

using namespace mcbp;

namespace {

double
seconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Relative agreement of two aggregates (coalescing drift check). */
bool
near(double a, double b)
{
    const double scale = std::max({std::abs(a), std::abs(b), 1.0});
    return std::abs(a - b) <= 1e-9 * scale;
}

/** Costed traces bit-identical field for field. */
bool
costsIdentical(const engine::ServingSimulator::CostedTrace &a,
               const engine::ServingSimulator::CostedTrace &b)
{
    if (a.clockGhz != b.clockGhz || a.serialSeconds != b.serialSeconds ||
        a.serialJoules != b.serialJoules ||
        a.costs.size() != b.costs.size())
        return false;
    for (std::size_t i = 0; i < a.costs.size(); ++i) {
        const engine::CostedRequest &x = a.costs[i];
        const engine::CostedRequest &y = b.costs[i];
        if (x.req->id != y.req->id ||
            x.arrivalCycles != y.arrivalCycles ||
            x.prefillCycles != y.prefillCycles ||
            x.weightCyclesPerToken != y.weightCyclesPerToken ||
            x.linearCyclesPerToken != y.linearCyclesPerToken ||
            x.otherCyclesPerToken != y.otherCyclesPerToken ||
            x.fixedCyclesPerToken != y.fixedCyclesPerToken ||
            x.weightJoulesPerToken != y.weightJoulesPerToken ||
            x.otherJoulesPerToken != y.otherJoulesPerToken ||
            x.kvBytes != y.kvBytes ||
            x.kvBytesPerToken != y.kvBytesPerToken ||
            x.remainingTokens != y.remainingTokens)
            return false;
    }
    return true;
}

/** The coalescing equivalence contract between two reports. */
bool
decisionsIdentical(const engine::ServingReport &ref,
                   const engine::ServingReport &coal, bool &drift_ok)
{
    drift_ok = near(ref.busySeconds, coal.busySeconds) &&
               near(ref.makespanSeconds, coal.makespanSeconds) &&
               near(ref.joulesPerToken, coal.joulesPerToken) &&
               near(ref.meanTpotSeconds, coal.meanTpotSeconds) &&
               near(ref.p99FirstTokenSeconds, coal.p99FirstTokenSeconds);
    if (ref.admissionOrder != coal.admissionOrder ||
        ref.preemptionOrder != coal.preemptionOrder ||
        ref.preemptions != coal.preemptions ||
        ref.decodeIterations != coal.decodeIterations ||
        ref.requests.size() != coal.requests.size())
        return false;
    for (std::size_t i = 0; i < ref.requests.size(); ++i) {
        if (ref.requests[i].id != coal.requests[i].id)
            return false;
        drift_ok = drift_ok && near(ref.requests[i].completionSeconds,
                                    coal.requests[i].completionSeconds);
    }
    return true;
}

std::size_t
generatedTokens(const engine::ServingReport &r)
{
    std::size_t tokens = 0;
    for (const engine::RequestMetrics &m : r.requests)
        tokens += m.decodeTokens;
    return tokens;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::validatedJsonPathFromArgs(argc, argv);
    bench::JsonRecords json("serving_speed");
    bool all_gates = true;

    engine::Registry registry;
    auto accel = registry.make("mcbp");

    // ---- Section 1: parallel memoized trace costing ------------------
    bench::banner("Trace costing: serial vs parallel singleflight");
    model::TraceConfig tc;
    tc.model = "OPT1B3";
    tc.task = "Dolly";
    tc.requests = 4000;
    tc.arrivalsPerSecond = 100.0;
    tc.seed = 5;
    const auto costing_trace = model::synthesizeTrace(tc);

    // Warm the profile cache once, untimed: both timed runs then pay
    // only the plan-level folds, the layer this PR parallelizes. Each
    // timed run gets a fresh simulator so its plan cache is cold.
    {
        engine::ServingOptions warm;
        warm.costingThreads = 1;
        (void)engine::ServingSimulator(*accel, warm)
            .costTrace(costing_trace);
    }
    engine::ServingOptions serial_opts;
    serial_opts.costingThreads = 1;
    engine::ServingSimulator serial_sim(*accel, serial_opts);
    engine::ServingSimulator::CostedTrace serial_costs;
    const double serial_s = seconds(
        [&] { serial_costs = serial_sim.costTrace(costing_trace); });

    engine::ServingOptions par_opts;
    par_opts.costingThreads = 0; // full pool.
    engine::ServingSimulator par_sim(*accel, par_opts);
    engine::ServingSimulator::CostedTrace par_costs;
    const double par_s =
        seconds([&] { par_costs = par_sim.costTrace(costing_trace); });

    const double cost_speedup = par_s > 0.0 ? serial_s / par_s : 1.0;
    const bool cost_identical = costsIdentical(serial_costs, par_costs);
    const bool cost_gate_enforced = parallel::hardwareThreads() >= 8;
    const bool cost_gate =
        cost_identical && (!cost_gate_enforced || cost_speedup >= 4.0);
    all_gates = all_gates && cost_gate;

    std::printf("  requests %zu  distinct shapes %zu  threads %zu\n",
                costing_trace.size(), par_sim.planCache()->size(),
                parallel::hardwareThreads());
    std::printf("  serial    %8.3f s  (%.0f req/s)\n", serial_s,
                serial_s > 0.0 ? costing_trace.size() / serial_s : 0.0);
    std::printf("  parallel  %8.3f s  (%.0f req/s)\n", par_s,
                par_s > 0.0 ? costing_trace.size() / par_s : 0.0);
    std::printf("  speedup   %8.2fx   bit-identical: %s\n", cost_speedup,
                cost_identical ? "yes" : "NO (BUG)");
    if (!cost_gate_enforced)
        std::printf("  speedup gate (>= 4x) skipped: %zu hardware "
                    "threads < 8\n",
                    parallel::hardwareThreads());
    else
        std::printf("  speedup gate (>= 4x): %s\n",
                    cost_gate ? "pass" : "FAIL");
    json.begin()
        .field("section", "trace_costing")
        .field("requests", costing_trace.size())
        .field("distinct_shapes", par_sim.planCache()->size())
        .field("threads", parallel::hardwareThreads())
        .field("serial_s", serial_s)
        .field("parallel_s", par_s)
        .field("requests_costed_per_s",
               par_s > 0.0 ? costing_trace.size() / par_s : 0.0)
        .field("speedup", cost_speedup)
        .field("bit_identical", cost_identical ? 1 : 0)
        .field("gate_enforced", cost_gate_enforced ? 1 : 0);

    // ---- Section 2: decode-iteration coalescing ----------------------
    bench::banner("Decode coalescing: per-token vs coalesced stepping");
    // A long-decode burst (everything arrives at t = 0): the per-token
    // loop pays one pass per generated token, the coalesced loop one
    // pass per discrete event. Decode lengths are staggered so
    // completions keep re-chunking the windows.
    std::vector<model::Request> decode_trace;
    for (std::size_t i = 0; i < 256; ++i) {
        model::Request r;
        r.id = i;
        r.arrivalSeconds = 0.0;
        r.model = "OPT1B3";
        r.task = "Dolly";
        r.promptLen = 96 + (i * 13) % 64;
        r.decodeLen = 2048 + (i * 257) % 2048;
        decode_trace.push_back(r);
    }

    struct Leg
    {
        const char *name;
        engine::KvPolicy kv;
        double capacity; // <= 0 = unbounded.
        /** Enforce the >= 10x window-reduction gate: the long-decode
         *  leg's claim. The preempting leg exists to gate decision
         *  identity under eviction; its every preemption deliberately
         *  pins a window to one iteration, so only its contract —
         *  not its reduction ratio — is gated. */
        bool gateWindows;
    };
    std::vector<Leg> legs = {{"reserve_unbounded",
                              engine::KvPolicy::Reserve, 0.0, true}};
    {
        // Size a paged pool to preempt: the decision-identity gate
        // must cover eviction victims, not just admissions.
        engine::ServingOptions probe;
        probe.maxBatch = 64;
        probe.kvPolicy = engine::KvPolicy::Paged;
        const double peak = engine::ServingSimulator(*accel, probe)
                                .simulate(decode_trace)
                                .kvPeakBytes;
        legs.push_back({"paged_preempting", engine::KvPolicy::Paged,
                        peak / 4.0, false});
    }

    for (const Leg &leg : legs) {
        engine::ServingOptions base;
        base.maxBatch = 64;
        base.kvPolicy = leg.kv;
        base.kvCapacityBytes = leg.capacity;

        engine::ServingOptions ref_opts = base;
        ref_opts.stepMode = engine::StepMode::PerToken;
        engine::ServingSimulator ref_sim(*accel, ref_opts);
        engine::ServingOptions coal_opts = base;
        coal_opts.stepMode = engine::StepMode::Coalesced;
        engine::ServingSimulator coal_sim(*accel, coal_opts);

        // Warm both plan caches untimed so the timed walls compare
        // the event loops, not cold costing.
        (void)ref_sim.costTrace(decode_trace);
        (void)coal_sim.costTrace(decode_trace);

        engine::ServingReport ref, coal;
        const double ref_s =
            seconds([&] { ref = ref_sim.simulate(decode_trace); });
        const double coal_s =
            seconds([&] { coal = coal_sim.simulate(decode_trace); });

        bool drift_ok = false;
        const bool decisions = decisionsIdentical(ref, coal, drift_ok);
        const double wall_speedup = coal_s > 0.0 ? ref_s / coal_s : 1.0;
        const double window_reduction =
            coal.decodeWindows > 0
                ? static_cast<double>(coal.decodeIterations) /
                      static_cast<double>(coal.decodeWindows)
                : 1.0;
        // The algorithmic gate: >= 10x fewer decode loop passes. The
        // wall-clock win is reported but not gated (tiny traces put
        // costing/aggregation in the denominator).
        const bool leg_gate =
            decisions && drift_ok &&
            (!leg.gateWindows || window_reduction >= 10.0);
        all_gates = all_gates && leg_gate;

        const std::size_t tokens = generatedTokens(coal);
        std::printf("  [%s]\n", leg.name);
        std::printf("    per-token  %8.3f s  (%zu iterations, "
                    "%zu passes)\n",
                    ref_s, ref.decodeIterations, ref.decodeWindows);
        std::printf("    coalesced  %8.3f s  (%zu iterations, "
                    "%zu windows)\n",
                    coal_s, coal.decodeIterations, coal.decodeWindows);
        std::printf("    wall %5.2fx  window reduction %7.1fx  "
                    "sim tokens/s %.3g  preemptions %zu\n",
                    wall_speedup, window_reduction,
                    coal_s > 0.0 ? tokens / coal_s : 0.0,
                    coal.preemptions);
        std::printf("    decisions identical: %s   drift <= 1e-9: %s   "
                    "gate%s: %s\n",
                    decisions ? "yes" : "NO (BUG)",
                    drift_ok ? "yes" : "NO (BUG)",
                    leg.gateWindows ? " (>= 10x windows)" : "",
                    leg_gate ? "pass" : "FAIL");
        json.begin()
            .field("section", "decode_coalescing")
            .field("leg", leg.name)
            .field("per_token_s", ref_s)
            .field("coalesced_s", coal_s)
            .field("wall_speedup", wall_speedup)
            .field("decode_iterations", coal.decodeIterations)
            .field("decode_windows", coal.decodeWindows)
            .field("window_reduction", window_reduction)
            .field("simulated_tokens_per_s",
                   coal_s > 0.0 ? tokens / coal_s : 0.0)
            .field("decisions_identical", decisions ? 1 : 0)
            .field("drift_ok", drift_ok ? 1 : 0)
            .field("windows_gate_enforced", leg.gateWindows ? 1 : 0);
        bench::appendServingFields(json, coal);
    }

    json.writeIfRequested(argc, argv);
    std::printf("\nserving-speed gates: %s\n",
                all_gates ? "PASS" : "FAIL");
    return all_gates ? 0 : 1;
}
