/**
 * @file
 * Fig 24: (a) the alpha_r sweep — fidelity proxy vs attention sparsity
 * on reasoning-like (MMLU) and generation-like (MBPP) workloads;
 * (b) the hardware ablation — area/power/throughput/efficiency of
 * systolic -> BRCR -> +BSTC -> +BGPP.
 */
#include <iostream>

#include "accel/baselines.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "bgpp/bgpp_predictor.hpp"
#include "bgpp/topk_baseline.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "model/synthetic.hpp"
#include "sim/area_model.hpp"

using namespace mcbp;

namespace {

void
alphaSweep()
{
    bench::banner("Fig 24(a): alpha_r sweep — recall proxy vs attention "
                  "sparsity (Llama7B)");
    const model::LlmConfig &m = model::findModel("Llama7B");
    Table t({"alpha", "MMLU recall", "MMLU sparsity", "MBPP recall",
             "MBPP sparsity"});
    for (double alpha : {0.8, 0.7, 0.6, 0.5, 0.4, 0.3}) {
        std::vector<std::string> row = {fmt(alpha, 1)};
        for (const char *task_name : {"MMLU", "MBPP"}) {
            const model::Workload &task = model::findTask(task_name);
            Rng rng(2024);
            double recall_sum = 0.0, spars_sum = 0.0;
            const int reps = 6;
            for (int i = 0; i < reps; ++i) {
                model::AttentionSet set = model::synthesizeAttention(
                    rng, std::min<std::size_t>(task.promptLen, 1024),
                    m.headDim(), task.attentionConcentration);
                bgpp::BgppConfig cfg;
                cfg.alpha = alpha;
                cfg.logitScale = set.logitScale;
                bgpp::BgppPredictor pred(cfg);
                bgpp::BgppResult r = pred.predict(set.query, set.keys);
                bgpp::TopkResult truth = bgpp::exactTopk(
                    set.query, set.keys,
                    std::max<std::size_t>(1, r.selected.size()));
                recall_sum += bgpp::recall(r.selected, truth.selected);
                spars_sum += bgpp::BgppPredictor::attentionSparsity(
                    r, set.keys.rows());
            }
            row.push_back(fmtPct(recall_sum / reps));
            row.push_back(fmtPct(spars_sum / reps));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "Paper reference: accuracy degrades noticeably below "
                 "alpha < 0.6 (MBPP) / < 0.5 (MMLU); sparsity gains "
                 "saturate below 0.5. MCBP operates at 0.5-0.6.\n";
}

void
hardwareAblation()
{
    bench::banner("Fig 24(b): hardware ablation vs equal-throughput "
                  "systolic array (Llama7B Wikilingua)");
    const model::LlmConfig &m = model::findModel("Llama7B");
    const model::Workload &task = model::findTask("Wikilingua");

    // Equal-throughput framing (the paper's): the systolic reference is
    // scaled until it matches each config's latency, so its area and
    // power grow with the speedup while the work's energy is fixed.
    accel::BaselineAccelerator systolic(accel::makeSystolic());
    accel::RunMetrics rs = systolic.run(m, task);
    const double sa_area = sim::systolicBaselineArea(sim::defaultConfig());
    sim::AreaBreakdown mcbp_area = sim::computeArea(sim::defaultConfig());

    auto cfg = [&](bool r, bool c, bool p) {
        accel::McbpOptions o;
        o.enableBrcr = r;
        o.enableBstc = c;
        o.enableBgpp = p;
        return accel::McbpAccelerator(sim::defaultConfig(), o).run(m, task);
    };
    accel::RunMetrics r1 = cfg(true, false, false);
    accel::RunMetrics r2 = cfg(true, true, false);
    accel::RunMetrics r3 = cfg(true, true, true);

    // Areas: BRCR-only omits the codec/BGPP units.
    const double a1 = mcbp_area.total() - mcbp_area.bstcUnit -
                      mcbp_area.bgppUnit;
    const double a2 = mcbp_area.total() - mcbp_area.bgppUnit;
    const double a3 = mcbp_area.total();

    Table t({"Config", "Norm area", "Norm power", "Norm throughput",
             "Norm efficiency"});
    auto row = [&](const char *name, const accel::RunMetrics &r,
                   double area) {
        const double speedup = rs.seconds() / r.seconds();
        // Equal-throughput SA: area and power scale with the lanes it
        // would need to match this config's latency; energy for the
        // fixed work does not, so power = energy / (matched time).
        const double sa_eq_area = sa_area * speedup;
        const double sa_eq_watts = rs.joules() / r.seconds();
        t.addRow({name, fmt(area / sa_eq_area),
                  fmt(r.watts() / sa_eq_watts),
                  fmtX(speedup),
                  fmtX(r.gopsPerWatt() /
                       (rs.gops() / (rs.joules() / rs.seconds())))});
    };
    t.addRow({"Systolic", fmt(1.0), fmt(1.0), fmtX(1.0), fmtX(1.0)});
    row("BRCR", r1, a1);
    row("+BSTC", r2, a2);
    row("+BGPP", r3, a3);
    t.print(std::cout);
    std::cout << "Paper reference: BRCR cuts area 45% and power 72% vs "
                 "the equal-throughput SA (3.6x efficiency); BSTC adds "
                 "2.2x throughput for 16% area; BGPP adds 1.48x for 9%.\n";
}

} // namespace

int
main()
{
    alphaSweep();
    hardwareAblation();
    return 0;
}
