/**
 * @file
 * Table 1 + Table 4: capability summary of the SOTA accelerators and
 * the headline spec comparison (throughput, energy efficiency, area),
 * with MCBP's GOPS / GOPS/W measured from a representative mixed
 * workload rather than asserted.
 *
 * Paper shape: MCBP 54,463 GOPS and 22,740 GOPS/W — 35x / 5.2x / 3.2x
 * the efficiency of SpAtten / FACT / SOFA (normalized to 28 nm).
 */
#include <iostream>

#include "accel/baselines.hpp"
#include "accel/mcbp_accelerator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/area_model.hpp"

using namespace mcbp;

int
main()
{
    bench::banner("Table 1: capability summary");
    {
        Table t({"Accelerator", "GEMM", "Attention", "Weight", "KV cache",
                 "Stages", "Level"});
        t.addRow({"A3/ELSA/Sanger/DOTA", "x", "yes", "x", "x", "P only",
                  "Value"});
        t.addRow({"Energon", "x", "yes", "x", "low", "P only", "Value"});
        t.addRow({"SpAtten", "yes", "yes", "x", "low", "P&D", "Value"});
        t.addRow({"SOFA", "x", "yes", "x", "yes", "P only", "Value"});
        t.addRow({"FACT", "yes", "yes", "low", "x", "P only", "Value"});
        t.addRow({"MCBP", "yes", "yes", "yes", "yes", "P&D", "Bit"});
        t.print(std::cout);
    }

    bench::banner("Table 4: spec comparison (28 nm normalized)");
    {
        // Measure MCBP on a decode+prefill mix (Wikilingua, Llama7B).
        const model::LlmConfig &m = model::findModel("Llama7B");
        const model::Workload &task = model::findTask("Wikilingua");
        accel::McbpAccelerator mcbp = accel::makeMcbpStandard();
        accel::RunMetrics rm = mcbp.run(m, task);

        accel::WeightStats ws =
            accel::profileWeights(m, quant::BitWidth::Int8, 1);
        accel::AttentionStats as =
            accel::profileAttention(m, task, 0.6, 1);
        (void)ws;
        auto eff = [&](const accel::BaselineTraits &tr) {
            return accel::BaselineAccelerator(tr).run(m, task);
        };
        accel::RunMetrics spatten = eff(accel::makeSpatten(as));
        accel::RunMetrics fact = eff(accel::makeFact(as));
        accel::RunMetrics sofa = eff(accel::makeSofa(as));

        Table t({"Design", "Area [mm^2]", "GOPS (measured)",
                 "GOPS/W (measured)", "MCBP efficiency adv."});
        const double mcbp_area =
            sim::computeArea(sim::defaultConfig()).total();
        auto row = [&](const char *name, const accel::RunMetrics &r,
                       double area) {
            t.addRow({name, fmt(area, 2), fmt(r.gops(), 0),
                      fmt(r.gopsPerWatt(), 0),
                      fmtX(rm.gopsPerWatt() / r.gopsPerWatt(), 1)});
        };
        row("SpAtten*", spatten, 1.55 * 2.0); // 40 nm scaled to 28 nm
        row("FACT*", fact, 6.03);
        row("SOFA*", sofa, 4.29);
        row("MCBP", rm, mcbp_area);
        t.print(std::cout);
        std::cout << "(*) baseline areas from their papers; their "
                     "GOPS/GOPS/W here are measured on the shared "
                     "platform model running the same workload, which is "
                     "what the efficiency-advantage column compares.\n";
        std::cout << "Paper reference: MCBP 54,463 GOPS, 22,740 GOPS/W; "
                     "35x / 5.2x / 3.2x more efficient than SpAtten / "
                     "FACT / SOFA.\n";
    }
    return 0;
}
