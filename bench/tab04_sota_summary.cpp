/**
 * @file
 * Table 1 + Table 4: capability summary of the SOTA accelerators and
 * the headline spec comparison (throughput, energy efficiency, area),
 * with MCBP's GOPS / GOPS/W measured from a representative mixed
 * workload rather than asserted.
 *
 * Paper shape: MCBP 54,463 GOPS and 22,740 GOPS/W — 35x / 5.2x / 3.2x
 * the efficiency of SpAtten / FACT / SOFA (normalized to 28 nm).
 */
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "engine/registry.hpp"
#include "sim/area_model.hpp"

using namespace mcbp;

int
main()
{
    engine::Registry registry;

    bench::banner("Table 1: capability summary (from engine "
                  "introspection; paper's 'low' entries shown as yes)");
    {
        auto fleet = registry.fleet(
            {"sanger", "energon", "spatten", "sofa", "fact", "mcbp"});
        Table t({"Accelerator", "GEMM", "Attention", "Weight", "KV cache",
                 "Stages", "Level"});
        auto yn = [](bool b) { return b ? "yes" : "x"; };
        for (const auto &accel : fleet) {
            const engine::Capabilities c = accel->capabilities();
            t.addRow({accel->name(), yn(c.gemmOptimized),
                      yn(c.attentionOptimized),
                      yn(c.weightTrafficOptimized),
                      yn(c.kvTrafficOptimized),
                      c.decodeOptimized ? "P&D" : "P only",
                      c.bitLevel ? "Bit" : "Value"});
        }
        t.print(std::cout);
    }

    bench::banner("Table 4: spec comparison (28 nm normalized)");
    {
        // Measure MCBP on a decode+prefill mix (Wikilingua, Llama7B).
        const model::LlmConfig &m = model::findModel("Llama7B");
        const model::Workload &task = model::findTask("Wikilingua");
        auto mcbp = registry.make("mcbp");
        accel::RunMetrics rm = mcbp->run(m, task);

        auto spatten_a = registry.make("spatten");
        auto fact_a = registry.make("fact");
        auto sofa_a = registry.make("sofa");
        accel::RunMetrics spatten = spatten_a->run(m, task);
        accel::RunMetrics fact = fact_a->run(m, task);
        accel::RunMetrics sofa = sofa_a->run(m, task);

        Table t({"Design", "Area [mm^2]", "GOPS (measured)",
                 "GOPS/W (measured)", "MCBP efficiency adv."});
        const double mcbp_area =
            sim::computeArea(sim::defaultConfig()).total();
        auto row = [&](const char *name, const accel::RunMetrics &r,
                       double area) {
            t.addRow({name, fmt(area, 2), fmt(r.gops(), 0),
                      fmt(r.gopsPerWatt(), 0),
                      fmtX(rm.gopsPerWatt() / r.gopsPerWatt(), 1)});
        };
        row("SpAtten*", spatten, 1.55 * 2.0); // 40 nm scaled to 28 nm
        row("FACT*", fact, 6.03);
        row("SOFA*", sofa, 4.29);
        row("MCBP", rm, mcbp_area);
        t.print(std::cout);
        std::cout << "(*) baseline areas from their papers; their "
                     "GOPS/GOPS/W here are measured on the shared "
                     "platform model running the same workload, which is "
                     "what the efficiency-advantage column compares.\n";
        std::cout << "Paper reference: MCBP 54,463 GOPS, 22,740 GOPS/W; "
                     "35x / 5.2x / 3.2x more efficient than SpAtten / "
                     "FACT / SOFA.\n";
    }
    return 0;
}
